"""Ablations for the design choices DESIGN.md calls out.

* **adj pruning** (Section 6.2): the DFS pruned adjacency search against
  the naive full-neighbourhood enumeration, across dimensions.
* **kappa0 sweep**: accept-set threshold constant vs peak space and
  empty-accept-set failures (the Lemma 2.5 trade-off).
* **hash family**: splitmix64 mixer vs Theta(log m)-wise independent
  polynomial hashing - same uniformity, different speed (the paper's
  "limited independence suffices" remark).
* **naive bias**: naive reservoir sampling vs the robust sampler on a
  power-law noisy dataset - the motivating experiment of the
  introduction.
"""

from __future__ import annotations

import random
import time

from repro.baselines.naive import NaiveReservoirSampler
from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.near_duplicates import add_near_duplicates, power_law_counts
from repro.datasets.synthetic import random_points
from repro.experiments.registry import ExperimentOutput, format_table
from repro.geometry.adjacency import brute_force_adjacent_cells, collect_adjacent
from repro.geometry.grid import Grid
from repro.metrics.accuracy import deviation_report
from repro.streams.point import StreamPoint

PROFILES = {
    "quick": {"runs": 300, "num_groups": 40},
    "standard": {"runs": 1500, "num_groups": 60},
    "full": {"runs": 10000, "num_groups": 100},
}


def _adj_pruning_table(seed: int) -> tuple[str, list[dict]]:
    rows = []
    data = []
    rng = random.Random(seed)
    for dim in (2, 4, 6, 8):
        grid = Grid(side=dim * 1.0, dim=dim, rng=rng)
        points = [tuple(rng.uniform(0, 100) for _ in range(dim)) for _ in range(50)]
        start = time.perf_counter()
        pruned_cells = sum(len(collect_adjacent(grid, p, 1.0)) for p in points)
        pruned_time = time.perf_counter() - start
        start = time.perf_counter()
        naive_cells = sum(
            len(brute_force_adjacent_cells(grid, p, 1.0)) for p in points
        )
        naive_time = time.perf_counter() - start
        assert pruned_cells == naive_cells
        rows.append(
            [
                dim,
                round(pruned_cells / len(points), 2),
                round(pruned_time * 1e6 / len(points), 1),
                round(naive_time * 1e6 / len(points), 1),
                round(naive_time / pruned_time, 1),
            ]
        )
        data.append(
            {
                "dim": dim,
                "mean_adj_cells": pruned_cells / len(points),
                "pruned_us": pruned_time * 1e6 / len(points),
                "naive_us": naive_time * 1e6 / len(points),
                "speedup": naive_time / pruned_time,
            }
        )
    text = format_table(
        ["dim", "mean |adj(p)|", "pruned us/pt", "naive us/pt", "speedup x"],
        rows,
        title=(
            "Ablation (Section 6.2): DFS-pruned adj(p) vs naive 3^d "
            "enumeration\n(|adj(p)| stays O(1); naive cost explodes with "
            "dimension)\n"
        ),
    )
    return text, data


def _kappa_table(seed: int, num_groups: int) -> tuple[str, list[dict]]:
    rng = random.Random(seed)
    base = random_points(num_groups, 5, rng=rng)
    counts = [rng.randint(1, 10) for _ in range(num_groups)]
    vectors, _, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    order = list(range(len(vectors)))
    rows = []
    data = []
    for kappa0 in (1, 2, 4, 8, 16):
        empties = 0
        peak = 0
        trials = 30
        for t in range(trials):
            rng.shuffle(order)
            sampler = RobustL0SamplerIW(
                alpha,
                5,
                kappa0=kappa0,
                seed=seed * 1009 + t,
                expected_stream_length=len(vectors),
            )
            for i, j in enumerate(order):
                sampler.insert(StreamPoint(vectors[j], i))
            if sampler.accept_size == 0:
                empties += 1
            peak = max(peak, sampler.peak_space_words)
        rows.append([kappa0, peak, empties, trials])
        data.append(
            {
                "kappa0": kappa0,
                "peak_words": peak,
                "empty_accept_sets": empties,
                "trials": trials,
            }
        )
    text = format_table(
        ["kappa0", "peak words", "empty S_acc", "trials"],
        rows,
        title=(
            "Ablation: threshold constant kappa0 (Lemma 2.5 trade-off)\n"
            "(larger kappa0 = more space, lower failure odds)\n"
        ),
    )
    return text, data


def _hash_table(seed: int, num_groups: int, runs: int) -> tuple[str, list[dict]]:
    rng = random.Random(seed)
    base = random_points(num_groups, 5, rng=rng)
    counts = [rng.randint(1, 8) for _ in range(num_groups)]
    vectors, labels, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    rows = []
    data = []
    for name, kwise in (("splitmix64", None), ("20-wise poly", 20)):
        sample_counts = [0] * num_groups
        query_rng = random.Random(seed ^ 0x11A5)
        start = time.perf_counter()
        for r in range(runs):
            shuffle_rng = random.Random(seed * 2221 + r)
            order = list(range(len(vectors)))
            shuffle_rng.shuffle(order)
            sampler = RobustL0SamplerIW(
                alpha,
                5,
                seed=seed * 17 + r,
                kwise=kwise,
                expected_stream_length=len(vectors),
            )
            label_of = {}
            for i, j in enumerate(order):
                label_of[i] = labels[j]
                sampler.insert(StreamPoint(vectors[j], i))
            sample_counts[label_of[sampler.sample(query_rng).index]] += 1
        elapsed = time.perf_counter() - start
        report = deviation_report(sample_counts)
        rows.append(
            [
                name,
                round(report.std_dev_nm, 4),
                round(report.noise_floor, 4),
                round(report.p_value, 4),
                round(elapsed / runs * 1000, 1),
            ]
        )
        data.append(
            {
                "hash": name,
                "std_dev_nm": report.std_dev_nm,
                "noise_floor": report.noise_floor,
                "p_value": report.p_value,
                "ms_per_run": elapsed / runs * 1000,
            }
        )
    text = format_table(
        ["hash family", "stdDevNm", "noiseFloor", "chi2 p", "ms/run"],
        rows,
        title=(
            "Ablation: hash family (limited independence suffices, "
            "Section 2.1 remark)\n"
        ),
    )
    return text, data


def _bias_table(seed: int, num_groups: int, runs: int) -> tuple[str, list[dict]]:
    rng = random.Random(seed)
    base = random_points(num_groups, 5, rng=rng)
    counts = power_law_counts(num_groups, rng=rng)
    vectors, labels, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    group_sizes = [0] * num_groups
    for label in labels:
        group_sizes[label] += 1
    biggest = max(range(num_groups), key=group_sizes.__getitem__)

    robust_counts = [0] * num_groups
    naive_counts = [0] * num_groups
    query_rng = random.Random(seed ^ 0xB1A5)
    for r in range(runs):
        shuffle_rng = random.Random(seed * 3323 + r)
        order = list(range(len(vectors)))
        shuffle_rng.shuffle(order)
        robust = RobustL0SamplerIW(
            alpha, 5, seed=seed * 41 + r, expected_stream_length=len(vectors)
        )
        naive = NaiveReservoirSampler(rng=random.Random(seed * 43 + r))
        label_of = {}
        for i, j in enumerate(order):
            label_of[i] = labels[j]
            point = StreamPoint(vectors[j], i)
            robust.insert(point)
            naive.insert(point)
        robust_counts[label_of[robust.sample(query_rng).index]] += 1
        naive_counts[label_of[naive.sample().index]] += 1

    target = 1.0 / num_groups
    rows = []
    data = []
    for name, counted in (("robust l0", robust_counts), ("naive reservoir", naive_counts)):
        report = deviation_report(counted)
        big_freq = counted[biggest] / runs
        rows.append(
            [
                name,
                round(report.std_dev_nm, 3),
                round(report.max_dev_nm, 3),
                round(big_freq / target, 1),
            ]
        )
        data.append(
            {
                "sampler": name,
                "std_dev_nm": report.std_dev_nm,
                "max_dev_nm": report.max_dev_nm,
                "largest_group_overweight": big_freq / target,
            }
        )
    text = format_table(
        ["sampler", "stdDevNm", "maxDevNm", "largest-group weight x"],
        rows,
        title=(
            "Ablation (motivation): power-law near-duplicates bias naive "
            "sampling\n(naive weight on the largest group is ~its point "
            "share * n; robust stays ~1)\n"
        ),
    )
    return text, data


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    runs: int | None = None,
    num_groups: int | None = None,
) -> ExperimentOutput:
    """Run all four ablations."""
    settings = PROFILES[profile]
    runs = runs if runs is not None else settings["runs"]
    num_groups = num_groups if num_groups is not None else settings["num_groups"]

    adj_text, adj_data = _adj_pruning_table(seed)
    kappa_text, kappa_data = _kappa_table(seed, num_groups)
    hash_text, hash_data = _hash_table(seed, num_groups, max(100, runs // 5))
    bias_text, bias_data = _bias_table(seed, num_groups, runs)

    return ExperimentOutput(
        experiment_id="ablations",
        title="Ablations",
        text="\n\n".join([adj_text, kappa_text, hash_text, bias_text]),
        data={
            "adj_pruning": adj_data,
            "kappa0": kappa_data,
            "hash_family": hash_data,
            "naive_bias": bias_data,
        },
    )
