"""Command-line entry point: ``python -m repro.experiments <id> [...]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    """Run one or all experiments and print their tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (see --list)",
    )
    parser.add_argument(
        "--profile",
        default="standard",
        choices=["quick", "standard", "full"],
        help="workload scale (quick: CI, standard: laptop, full: paper)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    args = parser.parse_args(argv)

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        start = time.perf_counter()
        output = run_experiment(
            experiment_id, profile=args.profile, seed=args.seed
        )
        elapsed = time.perf_counter() - start
        print(f"=== {experiment_id}: {EXPERIMENTS[experiment_id]} ===")
        print(output.text)
        print(f"[{experiment_id} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
