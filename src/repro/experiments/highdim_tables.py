"""Theorem 4.1: high-dimensional (alpha, beta)-sparse datasets.

For data with ``beta > d**1.5 * alpha`` the Section 4 configuration (grid
side ``d * alpha``) must stay uniform while using O(d log m) words; the
Remark 2 variant first projects with Johnson-Lindenstrauss.  The table
sweeps the dimension and reports uniformity and space for both.
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import sparse_high_dim
from repro.experiments.registry import ExperimentOutput, format_table
from repro.highdim.sparse import HighDimSamplerIW
from repro.metrics.accuracy import deviation_report
from repro.streams.point import StreamPoint

PROFILES = {
    "quick": {"runs": 300, "dims": [10, 20], "num_groups": 30},
    "standard": {"runs": 1200, "dims": [10, 20, 40], "num_groups": 40},
    "full": {"runs": 10000, "dims": [10, 20, 40, 80], "num_groups": 60},
}


def _distribution(vectors, labels, alpha, dim, num_groups, runs, seed, **sampler_kw):
    counts = [0] * num_groups
    query_rng = random.Random(seed ^ 0xD1)
    for r in range(runs):
        rng = random.Random(seed * 104729 + r)
        order = list(range(len(vectors)))
        rng.shuffle(order)
        sampler = HighDimSamplerIW(
            alpha,
            dim,
            seed=seed * 13 + r,
            expected_stream_length=len(vectors),
            **sampler_kw,
        )
        label_of = {}
        for i, j in enumerate(order):
            label_of[i] = labels[j]
            sampler.insert(StreamPoint(vectors[j], i))
        counts[label_of[sampler.sample(query_rng).index]] += 1
    peak = sampler.peak_space_words
    return deviation_report(counts), peak


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    runs: int | None = None,
    dims: list[int] | None = None,
    num_groups: int | None = None,
) -> ExperimentOutput:
    """Check Theorem 4.1 and the Remark 2 JL variant."""
    settings = PROFILES[profile]
    runs = runs if runs is not None else settings["runs"]
    dims = dims if dims is not None else settings["dims"]
    num_groups = num_groups if num_groups is not None else settings["num_groups"]

    rows = []
    data = []
    for dim in dims:
        vectors, labels, alpha = sparse_high_dim(
            num_groups, 4, dim, rng=random.Random(seed + dim)
        )
        report, peak = _distribution(
            vectors, labels, alpha, dim, num_groups, runs, seed
        )
        rows.append(
            [
                dim,
                "grid d*alpha",
                num_groups,
                runs,
                round(report.std_dev_nm, 4),
                round(report.noise_floor, 4),
                round(report.p_value, 4),
                peak,
            ]
        )
        data.append(
            {
                "dim": dim,
                "variant": "native",
                "std_dev_nm": report.std_dev_nm,
                "noise_floor": report.noise_floor,
                "p_value": report.p_value,
                "peak_words": peak,
            }
        )
        if dim >= 20:
            # Remark 2: project to O(log m) dimensions first.
            target = max(5, dim // 4)
            report_jl, peak_jl = _distribution(
                vectors,
                labels,
                alpha,
                dim,
                num_groups,
                runs,
                seed,
                project_to=target,
            )
            rows.append(
                [
                    dim,
                    f"JL -> {target}",
                    num_groups,
                    runs,
                    round(report_jl.std_dev_nm, 4),
                    round(report_jl.noise_floor, 4),
                    round(report_jl.p_value, 4),
                    peak_jl,
                ]
            )
            data.append(
                {
                    "dim": dim,
                    "variant": f"jl_{target}",
                    "std_dev_nm": report_jl.std_dev_nm,
                    "noise_floor": report_jl.noise_floor,
                    "p_value": report_jl.p_value,
                    "peak_words": peak_jl,
                }
            )

    text = format_table(
        [
            "dim",
            "variant",
            "groups",
            "runs",
            "stdDevNm",
            "noiseFloor",
            "chi2 p",
            "peak words",
        ],
        rows,
        title=(
            "Theorem 4.1: (alpha, beta)-sparse data in high dimension\n"
            "(uniformity preserved; peak words grow linearly with the "
            "effective dimension, so the JL variant shrinks space)\n"
        ),
    )
    return ExperimentOutput(
        experiment_id="thm41",
        title="High-dimensional sparse datasets",
        text=text,
        data={"highdim": data},
    )
