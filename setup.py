from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.5.0",
    description=(
        "Reproduction of robust sampling and distinct-element "
        "estimation over noisy data streams, grown into a batched, "
        "sharded streaming engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    # numpy powers the vectorised chunk-geometry kernels
    # (repro.geometry.kernels); it was already imported by
    # repro.highdim.jl and repro.datasets.synthetic.
    install_requires=["numpy>=1.24"],
    extras_require={
        # The multi-tenant serving layer (repro.service) is plain ASGI
        # and has no hard web dependency: tests and examples drive it
        # in-process.  The extra only supplies a production server for
        # `python -m repro.cli serve`.
        "service": ["uvicorn>=0.23"],
        # The redis state backend (repro.backends.redis) imports cleanly
        # without the client library; constructing it then raises a
        # typed BackendUnavailableError and the test matrix skips the
        # flavour.  The extra turns it on.
        "redis": ["redis>=4.5"],
    },
)
