"""Property-based oracle tests for Algorithm 1 (infinite window)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.infinite_window import RobustL0SamplerIW
from repro.streams.point import StreamPoint

STREAMS = st.lists(st.integers(min_value=0, max_value=19), min_size=1, max_size=80)
SEEDS = st.integers(min_value=0, max_value=10_000)


def build_points(groups: list[int], jitter_seed: int) -> list[StreamPoint]:
    rng = random.Random(jitter_seed)
    return [
        StreamPoint((20.0 * g + rng.uniform(0.0, 0.5),), i)
        for i, g in enumerate(groups)
    ]


class TestAlgorithm1Oracle:
    @given(STREAMS, SEEDS)
    @settings(max_examples=120, deadline=None)
    def test_definition_2_2_invariant(self, groups, seed):
        """S_acc and S_rej always match Definition 2.2 exactly.

        ``accept_capacity=4`` forces the rate to double repeatedly so the
        resampling path (Line 12 of Algorithm 1) is exercised, not just
        the R=1 regime.
        """
        points = build_points(groups, seed)
        sampler = RobustL0SamplerIW(
            1.0,
            1,
            seed=seed,
            expected_stream_length=len(points),
            accept_capacity=4,
        )
        for p in points:
            sampler.insert(p)
        mask = sampler.rate_denominator - 1
        for record in sampler._store.accepted_records():
            assert record.cell_hash & mask == 0
        for record in sampler._store.rejected_records():
            assert record.cell_hash & mask != 0
            assert any(v & mask == 0 for v in record.adj_hashes)

    @given(STREAMS, SEEDS)
    @settings(max_examples=120, deadline=None)
    def test_representative_is_group_first_point(self, groups, seed):
        """At rate 1 (threshold above the group count) every group is a
        candidate from its first point, so representatives must be exact
        first arrivals.  (At higher rates a group ignored at birth may be
        tracked later from a different point - allowed by the paper.)"""
        points = build_points(groups, seed)
        sampler = RobustL0SamplerIW(
            1.0, 1, seed=seed, expected_stream_length=len(points)
        )
        first_arrival: dict[int, int] = {}
        for g, p in zip(groups, points):
            first_arrival.setdefault(g, p.index)
            sampler.insert(p)
        for record in sampler._store.records():
            group = round(record.representative.vector[0] // 20.0)
            assert record.representative.index == first_arrival[group]

    @given(STREAMS, SEEDS)
    @settings(max_examples=120, deadline=None)
    def test_sample_is_a_seen_group(self, groups, seed):
        points = build_points(groups, seed)
        sampler = RobustL0SamplerIW(
            1.0, 1, seed=seed, expected_stream_length=len(points)
        )
        for p in points:
            sampler.insert(p)
        sample = sampler.sample(random.Random(seed))
        assert round(sample.vector[0] // 20.0) in set(groups)

    @given(STREAMS, SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_accept_set_never_empty(self, groups, seed):
        """Lemma 2.5 at property-test scale: |S_acc| > 0 at every step."""
        points = build_points(groups, seed)
        sampler = RobustL0SamplerIW(
            1.0, 1, seed=seed, expected_stream_length=len(points)
        )
        for p in points:
            sampler.insert(p)
            assert sampler.accept_size > 0

    @given(STREAMS, SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_group_counts_are_exact(self, groups, seed):
        """Tracked candidate groups count their points exactly (valid in
        the rate-1 regime where tracking starts at the first point)."""
        points = build_points(groups, seed)
        sampler = RobustL0SamplerIW(
            1.0, 1, seed=seed, expected_stream_length=len(points)
        )
        true_counts: dict[int, int] = {}
        for g, p in zip(groups, points):
            true_counts[g] = true_counts.get(g, 0) + 1
            sampler.insert(p)
        for record in sampler._store.records():
            group = round(record.representative.vector[0] // 20.0)
            assert record.count == true_counts[group]