"""Tests for the Section 5 robust F0 estimators."""

from __future__ import annotations

import random

import pytest

from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.f0_sliding import RobustF0EstimatorSW
from repro.errors import ParameterError
from repro.streams.windows import SequenceWindow


def feed_groups(estimator, num_groups, copies=3, seed=0, spacing=25.0):
    rng = random.Random(seed)
    stream = []
    for g in range(num_groups):
        for _ in range(copies):
            stream.append((spacing * g + rng.uniform(0, 0.5),))
    rng.shuffle(stream)
    estimator.extend(stream)


class TestInfiniteWindow:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RobustF0EstimatorIW(1.0, 1, epsilon=0.0)
        with pytest.raises(ParameterError):
            RobustF0EstimatorIW(1.0, 1, copies=0)

    def test_small_exact_regime(self):
        # While |S_acc| < capacity, R stays 1 and the estimate is exact.
        est = RobustF0EstimatorIW(1.0, 1, epsilon=0.5, copies=3, seed=0)
        feed_groups(est, 10)
        assert est.estimate() == 10.0

    def test_duplicates_do_not_inflate(self):
        est = RobustF0EstimatorIW(1.0, 1, epsilon=0.5, copies=3, seed=1)
        feed_groups(est, 10, copies=30)
        assert est.estimate() == 10.0

    def test_subsampled_regime_accuracy(self):
        est = RobustF0EstimatorIW(1.0, 1, epsilon=0.2, copies=9, seed=2)
        feed_groups(est, 600, copies=2, seed=2)
        estimate = est.estimate()
        assert abs(estimate - 600) / 600 < 0.35

    def test_copy_estimates_length(self):
        est = RobustF0EstimatorIW(1.0, 1, copies=5, seed=3)
        feed_groups(est, 20)
        assert len(est.copy_estimates()) == 5

    def test_median_robust_to_outlier_copies(self):
        est = RobustF0EstimatorIW(1.0, 1, epsilon=0.3, copies=9, seed=4)
        feed_groups(est, 300, seed=4)
        copies = sorted(est.copy_estimates())
        assert copies[0] <= est.estimate() <= copies[-1]

    def test_space_bounded_by_capacity(self):
        est = RobustF0EstimatorIW(1.0, 1, epsilon=0.3, copies=3, seed=5)
        feed_groups(est, 500, seed=5)
        # Each copy stores O(capacity) records of O(1) words.
        capacity = max(4, int(8 / 0.09))
        assert est.space_words() < 3 * capacity * 40


class TestSlidingWindow:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RobustF0EstimatorSW(
                1.0, 1, SequenceWindow(8), copies=0
            )
        with pytest.raises(ParameterError):
            RobustF0EstimatorSW(
                1.0, 1, SequenceWindow(8), mode="bogus"
            )

    def test_levels_grow_with_population(self):
        small = RobustF0EstimatorSW(
            1.0, 1, SequenceWindow(512), copies=6, seed=0
        )
        feed_groups(small, 8, copies=1)
        big = RobustF0EstimatorSW(
            1.0, 1, SequenceWindow(512), copies=6, seed=0
        )
        feed_groups(big, 400, copies=1)
        assert sum(big.copy_levels()) > sum(small.copy_levels())

    def test_estimate_order_of_magnitude(self):
        est = RobustF0EstimatorSW(
            1.0, 1, SequenceWindow(512), copies=10, seed=1
        )
        feed_groups(est, 300, copies=1, seed=1)
        estimate = est.estimate()
        assert 30 <= estimate <= 3000

    def test_hll_mode(self):
        est = RobustF0EstimatorSW(
            1.0, 1, SequenceWindow(128), copies=6, mode="hll", seed=2
        )
        feed_groups(est, 100, copies=1, seed=2)
        assert est.estimate() > 0

    def test_window_restricts_count(self):
        # Same stream, smaller window -> smaller estimate.
        big = RobustF0EstimatorSW(
            1.0, 1, SequenceWindow(1024), copies=8, seed=3
        )
        small = RobustF0EstimatorSW(
            1.0,
            1,
            SequenceWindow(16),
            copies=8,
            seed=3,
        )
        feed_groups(big, 500, copies=1, seed=3)
        feed_groups(small, 500, copies=1, seed=3)
        assert small.estimate() < big.estimate()

    def test_space_words(self):
        est = RobustF0EstimatorSW(
            1.0, 1, SequenceWindow(64), copies=4, seed=4
        )
        feed_groups(est, 50, copies=1)
        assert est.space_words() > 0
