"""Tests for k-sampling with/without replacement (Section 2.3)."""

from __future__ import annotations

import collections
import random

import pytest

from repro.core.ksample import KDistinctSampler
from repro.errors import EmptySampleError, ParameterError
from repro.streams.windows import SequenceWindow


def feed_groups(sampler, num_groups, copies=3, seed=0):
    rng = random.Random(seed)
    stream = []
    for g in range(num_groups):
        for _ in range(copies):
            stream.append((20.0 * g + rng.uniform(0, 0.5),))
    rng.shuffle(stream)
    for v in stream:
        sampler.insert(v)


def group_of(point):
    return round(point.vector[0] // 20.0)


class TestValidation:
    def test_k_positive(self):
        with pytest.raises(ParameterError):
            KDistinctSampler(1.0, 1, k=0)

    def test_properties(self):
        ks = KDistinctSampler(1.0, 1, k=3, replacement=True, seed=0)
        assert ks.k == 3
        assert ks.replacement


class TestWithoutReplacement:
    def test_samples_are_distinct_groups(self):
        ks = KDistinctSampler(1.0, 1, k=4, replacement=False, seed=1)
        feed_groups(ks, 12)
        rng = random.Random(0)
        for _ in range(10):
            groups = [group_of(p) for p in ks.sample(rng)]
            assert len(set(groups)) == 4

    def test_insufficient_groups_raises(self):
        ks = KDistinctSampler(1.0, 1, k=5, replacement=False, seed=2)
        feed_groups(ks, 2)
        with pytest.raises(EmptySampleError):
            ks.sample(random.Random(0))

    def test_threshold_boost_keeps_enough_samples(self):
        # With the kappa0*k threshold the accept set holds >= k groups.
        ks = KDistinctSampler(
            1.0, 1, k=6, replacement=False, seed=3, expected_stream_length=600
        )
        feed_groups(ks, 150, copies=2, seed=3)
        assert len(ks.sample(random.Random(1))) == 6

    def test_coverage_over_runs(self):
        # Over many runs all groups should appear.
        seen = set()
        for seed in range(40):
            ks = KDistinctSampler(1.0, 1, k=2, replacement=False, seed=seed)
            feed_groups(ks, 8, seed=seed)
            seen.update(group_of(p) for p in ks.sample(random.Random(seed)))
        assert seen == set(range(8))


class TestWithReplacement:
    def test_returns_k_samples(self):
        ks = KDistinctSampler(1.0, 1, k=3, replacement=True, seed=4)
        feed_groups(ks, 10)
        assert len(ks.sample(random.Random(0))) == 3

    def test_repeats_possible(self):
        # With 2 groups and k=4, pigeonhole forces repeats.
        ks = KDistinctSampler(1.0, 1, k=4, replacement=True, seed=5)
        feed_groups(ks, 2)
        groups = [group_of(p) for p in ks.sample(random.Random(0))]
        assert len(set(groups)) <= 2

    def test_copies_are_independent(self):
        tallies = collections.Counter()
        for seed in range(60):
            ks = KDistinctSampler(1.0, 1, k=2, replacement=True, seed=seed)
            feed_groups(ks, 4, seed=seed)
            a, b = (group_of(p) for p in ks.sample(random.Random(seed)))
            tallies[(a == b)] += 1
        # With 4 groups, P[match] ~ 1/4; both outcomes must occur.
        assert tallies[True] > 0 and tallies[False] > 0


class TestSlidingWindowMode:
    def test_window_samples_recent_groups(self):
        ks = KDistinctSampler(
            1.0,
            1,
            k=2,
            replacement=False,
            window=SequenceWindow(6),
            seed=6,
        )
        for g in range(20):
            ks.insert((20.0 * g,))
        groups = {group_of(p) for p in ks.sample(random.Random(0))}
        assert all(g >= 14 for g in groups)

    def test_space_words(self):
        ks = KDistinctSampler(1.0, 1, k=2, replacement=True, seed=7)
        feed_groups(ks, 5)
        assert ks.space_words() > 0
