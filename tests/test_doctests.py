"""Run the library's deterministic doctests as part of the suite.

Only modules whose examples are seed-deterministic are included; modules
whose docstring examples involve fresh randomness document behaviour
rather than assert it and are exercised by their dedicated test modules.

Modules are resolved through importlib: attribute access like
``repro.geometry.distance`` can be shadowed by same-named re-exports in
package ``__init__`` files (the ``distance`` function hides the
``distance`` module).
"""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.hashing.mix",
    "repro.hashing.kwise",
    "repro.hashing.sampling",
    "repro.geometry.distance",
    "repro.geometry.grid",
    "repro.geometry.adjacency",
    "repro.streams.point",
    "repro.streams.windows",
    "repro.streams.sources",
    "repro.partition.natural",
    "repro.partition.greedy",
    "repro.partition.min_cardinality",
    "repro.datasets.synthetic",
    "repro.datasets.uci_like",
    "repro.datasets.near_duplicates",
    "repro.metrics.accuracy",
    "repro.baselines.fm",
    "repro.baselines.loglog",
    "repro.baselines.hyperloglog",
    "repro.baselines.bjkst",
    "repro.highdim.jl",
    "repro.metric_space.metrics",
    "repro.metric_space.lsh",
    "repro.experiments.registry",
    "repro.persist",
    "repro.core.base",
    "repro.engine.pipeline",
    "repro.engine.executors",
    "repro.api",
    "repro.api.specs",
    "repro.api.registry",
    "repro.distributed.coordinator",
    "repro.service",
    "repro.service.config",
    "repro.service.testing",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module)
    assert result.failed == 0, f"{result.failed} doctest failures"
