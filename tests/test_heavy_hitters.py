"""Tests for robust heavy hitters over near-duplicate groups."""

from __future__ import annotations

import random

import pytest

from repro.core.heavy_hitters import RobustHeavyHitters
from repro.errors import ParameterError


def noisy_points(center, n, rng, spread=0.15):
    return [(center + rng.uniform(-spread, spread),) for _ in range(n)]


class TestBasics:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RobustHeavyHitters(1.0, 1, epsilon=0.0)
        hh = RobustHeavyHitters(1.0, 1, epsilon=0.5)
        with pytest.raises(ParameterError):
            hh.heavy_hitters(phi=0.0)

    def test_dimension_check(self):
        hh = RobustHeavyHitters(1.0, 2, epsilon=0.5)
        with pytest.raises(ParameterError):
            hh.insert((1.0,))

    def test_capacity(self):
        assert RobustHeavyHitters(1.0, 1, epsilon=0.1).capacity == 10

    def test_counts_group_points_together(self):
        hh = RobustHeavyHitters(1.0, 1, epsilon=0.25, seed=0)
        rng = random.Random(0)
        hh.extend(noisy_points(0.0, 5, rng))
        hh.insert((50.0,))
        assert hh.estimated_count((0.05,)) == 5
        assert hh.estimated_count((50.0,)) == 1
        assert hh.estimated_count((999.0,)) == 0


class TestHeavyHitterDetection:
    def test_detects_the_heavy_group(self):
        hh = RobustHeavyHitters(1.0, 1, epsilon=0.1, seed=1)
        rng = random.Random(1)
        stream = noisy_points(0.0, 70, rng)
        for g in range(1, 30):
            stream += noisy_points(40.0 * g, 1, rng)
        rng.shuffle(stream)
        hh.extend(stream)
        hits = hh.heavy_hitters(phi=0.3)
        assert len(hits) == 1
        assert abs(hits[0].representative.vector[0]) < 1.0
        assert hits[0].count >= 70

    def test_never_misses_true_heavy_groups(self):
        """SpaceSaving guarantee: frequency > m/capacity is always kept."""
        for seed in range(10):
            hh = RobustHeavyHitters(1.0, 1, epsilon=0.2, seed=seed)
            rng = random.Random(seed)
            stream = noisy_points(0.0, 50, rng)  # 50% of the stream
            stream += [(40.0 * rng.randint(1, 60),) for _ in range(50)]
            rng.shuffle(stream)
            hh.extend(stream)
            hits = hh.heavy_hitters(phi=0.4)
            assert any(abs(h.representative.vector[0]) < 1.0 for h in hits)

    def test_overestimate_bounded(self):
        hh = RobustHeavyHitters(1.0, 1, epsilon=0.25, seed=2)
        rng = random.Random(2)
        stream = [(40.0 * rng.randint(0, 50),) for _ in range(200)]
        hh.extend(stream)
        m = hh.points_seen
        for hit in hh.heavy_hitters(phi=0.01):
            # SpaceSaving: error at most m / capacity.
            assert hit.error <= m / hh.capacity
            assert hit.guaranteed_count <= hit.count

    def test_eviction_keeps_capacity(self):
        hh = RobustHeavyHitters(1.0, 1, epsilon=0.25, seed=3)
        rng = random.Random(3)
        for g in range(100):
            hh.insert((40.0 * g + rng.uniform(0, 0.2),))
        assert hh.num_tracked <= hh.capacity

    def test_sorted_output(self):
        hh = RobustHeavyHitters(1.0, 1, epsilon=0.2, seed=4)
        rng = random.Random(4)
        stream = noisy_points(0.0, 30, rng) + noisy_points(50.0, 20, rng)
        rng.shuffle(stream)
        hh.extend(stream)
        hits = hh.heavy_hitters(phi=0.1)
        counts = [h.count for h in hits]
        assert counts == sorted(counts, reverse=True)

    def test_space_words(self):
        hh = RobustHeavyHitters(1.0, 2, epsilon=0.5, seed=5)
        hh.insert((0.0, 0.0))
        assert hh.space_words() > 0
