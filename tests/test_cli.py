"""Tests for the command-line interface."""

from __future__ import annotations

import io
import sys
import types
import json
import random

import pytest

from repro.cli import main


@pytest.fixture
def csv_file(tmp_path):
    rng = random.Random(0)
    lines = []
    for g in range(10):
        for _ in range(4):
            lines.append(f"{20.0 * g + rng.uniform(0, 0.4)},{0.0}")
    rng.shuffle(lines)
    path = tmp_path / "points.csv"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestSampleCommand:
    def test_single_sample(self, csv_file):
        out = io.StringIO()
        code = main(
            ["sample", "--alpha", "1.0", "--seed", "3", csv_file], out=out
        )
        assert code == 0
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 1
        x, y = (float(v) for v in lines[0].split(","))
        assert y == 0.0 and 0.0 <= x <= 200.0

    def test_k_without_replacement(self, csv_file):
        out = io.StringIO()
        code = main(
            [
                "sample", "--alpha", "1.0", "--k", "3", "--seed", "1",
                csv_file,
            ],
            out=out,
        )
        assert code == 0
        groups = {
            round(float(line.split(",")[0]) // 20.0)
            for line in out.getvalue().strip().splitlines()
        }
        assert len(groups) == 3

    def test_window_mode(self, csv_file):
        out = io.StringIO()
        code = main(
            [
                "sample", "--alpha", "1.0", "--window", "5", "--seed", "2",
                csv_file,
            ],
            out=out,
        )
        assert code == 0
        assert out.getvalue().strip()

    @pytest.mark.parametrize("command", ["sample", "count", "heavy"])
    def test_empty_input(self, tmp_path, capsys, command):
        # Every command reports empty input through the uniform error
        # path: "error: ..." on stderr, exit code 1 - no bare SystemExit.
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        code = main(
            [command, "--alpha", "1.0", str(empty)], out=io.StringIO()
        )
        assert code == 1
        assert "error: input contains no points" in capsys.readouterr().err

    def test_bad_line_reports_position(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("1.0,2.0\nnot-a-number\n")
        code = main(["sample", "--alpha", "1.0", str(bad)], out=io.StringIO())
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "line 2" in err


class TestReproducibilityAndBatching:
    @staticmethod
    def run_cli(argv):
        out = io.StringIO()
        assert main(argv, out=out) == 0
        return out.getvalue()

    @pytest.mark.parametrize(
        "argv",
        [
            ["sample", "--alpha", "1.0", "--k", "2", "--seed", "5"],
            ["sample", "--alpha", "1.0", "--window", "20", "--seed", "5"],
            ["count", "--alpha", "1.0", "--epsilon", "0.5", "--seed", "5"],
            ["heavy", "--alpha", "1.0", "--phi", "0.1", "--seed", "5"],
        ],
    )
    def test_same_seed_same_output(self, csv_file, argv):
        first = self.run_cli(argv + [csv_file])
        second = self.run_cli(argv + [csv_file])
        assert first == second

    @pytest.mark.parametrize("batch_size", ["1", "3", "1000"])
    def test_batch_size_never_changes_output(self, csv_file, batch_size):
        # Batching is a throughput knob, not a semantic one: every batch
        # size must produce bit-identical output for a fixed seed.
        base = self.run_cli(
            ["sample", "--alpha", "1.0", "--k", "3", "--seed", "9", csv_file]
        )
        batched = self.run_cli(
            [
                "sample", "--alpha", "1.0", "--k", "3", "--seed", "9",
                "--batch-size", batch_size, csv_file,
            ]
        )
        assert batched == base

    def test_count_batch_invariance(self, csv_file):
        outputs = {
            self.run_cli(
                [
                    "count", "--alpha", "1.0", "--epsilon", "0.5",
                    "--seed", "4", "--batch-size", size, csv_file,
                ]
            )
            for size in ("1", "7", "4096")
        }
        assert len(outputs) == 1


class TestCountCommand:
    def test_exact_small_count(self, csv_file):
        out = io.StringIO()
        code = main(
            [
                "count", "--alpha", "1.0", "--epsilon", "0.5", "--seed", "0",
                csv_file,
            ],
            out=out,
        )
        assert code == 0
        assert float(out.getvalue()) == 10.0


class TestHeavyCommand:
    def test_heavy_reports_big_group(self, tmp_path):
        rng = random.Random(1)
        lines = [f"{rng.uniform(0, 0.3)}" for _ in range(30)]
        lines += [f"{50.0 * g}" for g in range(1, 8)]
        rng.shuffle(lines)
        path = tmp_path / "one_d.csv"
        path.write_text("\n".join(lines) + "\n")
        out = io.StringIO()
        code = main(
            [
                "heavy", "--alpha", "1.0", "--phi", "0.5",
                "--epsilon", "0.2", str(path),
            ],
            out=out,
        )
        assert code == 0
        rows = out.getvalue().strip().splitlines()
        assert len(rows) == 1
        count, error, coords = rows[0].split("\t")
        assert int(count) >= 30
        assert abs(float(coords)) < 1.0


class TestJsonOutput:
    """--output json: one JSON object per result line."""

    def test_sample_json_lines(self, csv_file):
        out = io.StringIO()
        code = main(
            [
                "sample", "--alpha", "1.0", "--k", "3", "--seed", "1",
                "--output", "json", csv_file,
            ],
            out=out,
        )
        assert code == 0
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"vector", "index", "time"}
            assert len(record["vector"]) == 2

    def test_json_matches_text_results(self, csv_file):
        text_out, json_out = io.StringIO(), io.StringIO()
        base = ["sample", "--alpha", "1.0", "--k", "2", "--seed", "5"]
        assert main(base + [csv_file], out=text_out) == 0
        assert main(base + ["--output", "json", csv_file], out=json_out) == 0
        text_vectors = [
            [float(x) for x in line.split(",")]
            for line in text_out.getvalue().strip().splitlines()
        ]
        json_vectors = [
            json.loads(line)["vector"]
            for line in json_out.getvalue().strip().splitlines()
        ]
        assert json_vectors == text_vectors

    def test_count_json(self, csv_file):
        out = io.StringIO()
        code = main(
            [
                "count", "--alpha", "1.0", "--epsilon", "0.5", "--seed", "0",
                "--output", "json", csv_file,
            ],
            out=out,
        )
        assert code == 0
        assert json.loads(out.getvalue()) == {"estimate": 10.0}

    def test_heavy_json(self, tmp_path):
        rng = random.Random(1)
        lines = [f"{rng.uniform(0, 0.3)}" for _ in range(30)]
        lines += [f"{50.0 * g}" for g in range(1, 8)]
        path = tmp_path / "one_d.csv"
        path.write_text("\n".join(lines) + "\n")
        out = io.StringIO()
        code = main(
            [
                "heavy", "--alpha", "1.0", "--phi", "0.5",
                "--epsilon", "0.2", "--output", "json", str(path),
            ],
            out=out,
        )
        assert code == 0
        rows = [json.loads(line) for line in out.getvalue().splitlines()]
        assert len(rows) == 1
        assert rows[0]["count"] >= 30
        assert set(rows[0]) == {
            "count", "error", "guaranteed_count", "vector",
        }


class TestCheckpointResume:
    """--save-state / --resume continue runs through repro.persist."""

    def test_split_run_equals_full_run(self, tmp_path):
        rng = random.Random(3)
        lines = [
            f"{20.0 * (i % 10) + rng.uniform(0, 0.4)},0.0" for i in range(40)
        ]
        full = tmp_path / "full.csv"
        full.write_text("\n".join(lines) + "\n")
        first = tmp_path / "first.csv"
        first.write_text("\n".join(lines[:20]) + "\n")
        second = tmp_path / "second.csv"
        second.write_text("\n".join(lines[20:]) + "\n")
        state = tmp_path / "state.json"

        full_out = io.StringIO()
        args = ["count", "--alpha", "1.0", "--epsilon", "0.5", "--seed", "7"]
        assert main(args + [str(full)], out=full_out) == 0

        assert main(
            args + ["--save-state", str(state), str(first)],
            out=io.StringIO(),
        ) == 0
        resumed_out = io.StringIO()
        assert main(
            args + ["--resume", str(state), str(second)], out=resumed_out
        ) == 0
        assert resumed_out.getvalue() == full_out.getvalue()

    def test_resume_with_empty_input_queries_checkpoint(self, tmp_path):
        data = tmp_path / "points.csv"
        data.write_text("0.0,0.0\n30.0,0.0\n")
        state = tmp_path / "state.json"
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        args = ["count", "--alpha", "1.0", "--epsilon", "0.5", "--seed", "2"]
        first_out = io.StringIO()
        assert main(
            args + ["--save-state", str(state), str(data)], out=first_out
        ) == 0
        resumed_out = io.StringIO()
        assert main(
            args + ["--resume", str(state), str(empty)], out=resumed_out
        ) == 0
        assert resumed_out.getvalue() == first_out.getvalue()

    def test_resume_type_mismatch_is_uniform_error(self, tmp_path, capsys):
        data = tmp_path / "points.csv"
        data.write_text("0.0\n9.0\n")
        state = tmp_path / "state.json"
        assert main(
            [
                "sample", "--alpha", "1.0", "--seed", "1",
                "--save-state", str(state), str(data),
            ],
            out=io.StringIO(),
        ) == 0
        code = main(
            [
                "count", "--alpha", "1.0", "--resume", str(state), str(data),
            ],
            out=io.StringIO(),
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestPipelineCommand:
    def test_text_output(self, csv_file):
        out = io.StringIO()
        code = main(
            [
                "pipeline", "--alpha", "1.0", "--seed", "3",
                "--shards", "3", csv_file,
            ],
            out=out,
        )
        assert code == 0
        estimate_line, sample_line = out.getvalue().strip().splitlines()
        assert 3.0 <= float(estimate_line) <= 40.0  # true 10 groups
        x, y = (float(v) for v in sample_line.split(","))
        assert y == 0.0 and 0.0 <= x <= 200.0

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_executors_match_serial_output(
        self, csv_file, executor
    ):
        def run(executor_args):
            out = io.StringIO()
            code = main(
                [
                    "pipeline", "--alpha", "1.0", "--seed", "3",
                    "--shards", "3", *executor_args, csv_file,
                ],
                out=out,
            )
            assert code == 0
            return out.getvalue()

        serial = run([])
        parallel = run(["--executor", executor, "--workers", "2"])
        # Deterministic shard-order merge fold: bit-identical output
        # whichever executor ran the shards.
        assert parallel == serial

    def test_json_output_and_resume(self, csv_file, tmp_path):
        state = tmp_path / "pipeline.json"
        out = io.StringIO()
        code = main(
            [
                "pipeline", "--alpha", "1.0", "--seed", "3",
                "--executor", "process", "--output", "json",
                "--save-state", str(state), csv_file,
            ],
            out=out,
        )
        assert code == 0
        result_line, sample_line = out.getvalue().strip().splitlines()
        result = json.loads(result_line)
        assert result["shards"] == 4
        assert result["executor"] == "process"
        assert result["communication_words"] > 0
        assert json.loads(sample_line)["vector"][1] == 0.0
        envelope = json.loads(state.read_text())
        assert envelope["summary"] == "batch-pipeline"
        assert envelope["state"]["spec"]["executor"] == "process"

        # Resume from the checkpoint with empty input: pure re-query.
        resumed_out = io.StringIO()
        code = main(
            [
                "pipeline", "--alpha", "1.0", "--seed", "3",
                "--output", "json", "--resume", str(state), "/dev/null",
            ],
            out=resumed_out,
        )
        assert code == 0
        resumed_line = resumed_out.getvalue().strip().splitlines()[0]
        assert json.loads(resumed_line)["estimate"] == result["estimate"]


class TestFormats:
    def test_jsonl_input(self, tmp_path):
        path = tmp_path / "points.jsonl"
        rows = [[0.1, 0.0], [0.2, 0.0], [30.0, 0.0]]
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        out = io.StringIO()
        code = main(
            [
                "count", "--alpha", "1.0", "--format", "jsonl",
                "--epsilon", "0.5", str(path),
            ],
            out=out,
        )
        assert code == 0
        assert float(out.getvalue()) == 2.0

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "points.csv"
        path.write_text("# header\n\n1.0,0.0\n9.0,0.0\n")
        out = io.StringIO()
        code = main(
            ["count", "--alpha", "1.0", "--epsilon", "0.5", str(path)],
            out=out,
        )
        assert code == 0
        assert float(out.getvalue()) == 2.0


class TestServeCommand:
    """The serve subcommand: app handoff to uvicorn, uniform errors."""

    def test_missing_uvicorn_is_uniform_error(self, monkeypatch, capsys):
        # A sys.modules entry of None makes `import uvicorn` raise
        # ImportError even if uvicorn were installed.
        monkeypatch.setitem(sys.modules, "uvicorn", None)
        code = main(
            ["serve", "--summary", "l0-infinite", "--alpha", "0.5",
             "--dim", "2"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "uvicorn" in err and "repro[service]" in err

    def test_hands_validated_app_to_uvicorn(self, monkeypatch):
        calls = {}

        def fake_run(app, host, port):
            calls["app"] = app
            calls["host"] = host
            calls["port"] = port

        monkeypatch.setitem(
            sys.modules, "uvicorn", types.SimpleNamespace(run=fake_run)
        )
        code = main(
            ["serve", "--summary", "heavy-hitters", "--alpha", "1.0",
             "--dim", "1", "--epsilon", "0.1", "--seed", "7",
             "--capacity", "16", "--ttl", "30", "--host", "0.0.0.0",
             "--port", "9001"]
        )
        assert code == 0
        from repro.service import SummaryService

        app = calls["app"]
        assert isinstance(app, SummaryService)
        assert app.spec.summary == "heavy-hitters"
        assert app.spec.capacity == 16
        assert app.spec.ttl_seconds == 30.0
        assert app.spec.spec.epsilon == 0.1
        assert app.spec.spec.seed == 7
        assert (calls["host"], calls["port"]) == ("0.0.0.0", 9001)

    def test_unknown_summary_key_is_uniform_error(self, capsys):
        code = main(["serve", "--summary", "nope", "--alpha", "1.0"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown summary key" in err

    def test_missing_required_spec_fields_is_uniform_error(self, capsys):
        code = main(["serve", "--summary", "l0-infinite"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "--alpha" in err

    def test_pipeline_key_is_servable(self, monkeypatch):
        # Formerly a uniform error: the ServiceSpec gate on
        # 'batch-pipeline' is gone now that eviction/shutdown close
        # worker-owning summaries.
        calls = {}
        monkeypatch.setitem(
            sys.modules,
            "uvicorn",
            types.SimpleNamespace(
                run=lambda app, host, port: calls.update(app=app)
            ),
        )
        code = main(
            ["serve", "--summary", "batch-pipeline", "--alpha", "1.0",
             "--dim", "1"]
        )
        assert code == 0
        assert calls["app"].spec.summary == "batch-pipeline"

    def test_file_store_flags_validated(self, capsys, tmp_path,
                                        monkeypatch):
        # --store file without --store-path is a spec validation error.
        code = main(
            ["serve", "--summary", "l0-infinite", "--alpha", "1.0",
             "--dim", "1", "--store", "file"]
        )
        assert code == 1
        assert "store_path" in capsys.readouterr().err

    def test_windowed_summary_via_flags(self, monkeypatch):
        ran = {}
        monkeypatch.setitem(
            sys.modules,
            "uvicorn",
            types.SimpleNamespace(run=lambda app, host, port: ran.update(
                app=app
            )),
        )
        code = main(
            ["serve", "--summary", "l0-sliding", "--alpha", "0.5",
             "--dim", "2", "--window", "100", "--seed", "1"]
        )
        assert code == 0
        assert ran["app"].spec.spec.window_size == 100
