"""Tests for Algorithm 2 (FixedRateSlidingSampler)."""

from __future__ import annotations

import random

import pytest

from repro.core.base import SamplerConfig
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.errors import EmptySampleError, ParameterError
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow, TimeWindow


def make(config=None, rate=1, window=None, **kwargs):
    config = config or SamplerConfig.create(1.0, 1, seed=5)
    window = window or SequenceWindow(5)
    return FixedRateSlidingSampler(config, rate, window, **kwargs), config


def pts(values, times=None):
    if times is None:
        return [StreamPoint((float(v),), i) for i, v in enumerate(values)]
    return [
        StreamPoint((float(v),), i, t) for i, (v, t) in enumerate(zip(values, times))
    ]


class TestBasics:
    def test_rejects_bad_rate(self):
        config = SamplerConfig.create(1.0, 1, seed=0)
        with pytest.raises(ParameterError):
            FixedRateSlidingSampler(config, 3, SequenceWindow(5))

    def test_rate_one_tracks_every_group(self):
        sampler, _ = make(rate=1)
        for p in pts([0.0, 10.0, 20.0, 30.0, 40.0]):
            sampler.insert(p)
        assert sampler.candidate_count == 5
        assert sampler.accepted_count == 5  # rate 1 accepts every cell

    def test_insert_returns_tracked_flag(self):
        sampler, config = make(rate=1)
        p = StreamPoint((0.0,), 0)
        tracked, ctx = sampler.insert(p)
        assert tracked
        assert ctx.cell == config.grid.cell_of(p.vector)

    def test_same_group_updates_last(self):
        sampler, _ = make(rate=1, window=SequenceWindow(100))
        stream = pts([0.0, 0.3, 0.1])
        for p in stream:
            sampler.insert(p)
        assert sampler.candidate_count == 1
        record = sampler.accepted_records()[0]
        assert record.representative.index == 0
        assert record.last.index == 2
        assert record.count == 3


class TestExpiry:
    def test_group_expires_when_last_point_leaves(self):
        sampler, _ = make(rate=1, window=SequenceWindow(3))
        stream = pts([0.0, 10.0, 20.0, 30.0])
        for p in stream:
            sampler.insert(p)
        # Window now holds indices 1..3; group 0.0 must be gone.
        values = {r.representative.vector[0] for r in sampler.accepted_records()}
        assert 0.0 not in values
        assert values == {10.0, 20.0, 30.0}

    def test_group_survives_if_refreshed(self):
        sampler, _ = make(rate=1, window=SequenceWindow(3))
        # Group A refreshed often enough to stay alive.
        stream = pts([0.0, 10.0, 0.2, 20.0, 0.3])
        for p in stream:
            sampler.insert(p)
        values = {r.representative.vector[0] for r in sampler.accepted_records()}
        assert 0.0 in values  # representative is the original first point

    def test_representative_may_be_expired_itself(self):
        """Observation 1: u can live outside the window while the group has
        points inside."""
        sampler, _ = make(rate=1, window=SequenceWindow(2))
        stream = pts([0.0, 0.1, 0.2, 0.3])
        for p in stream:
            sampler.insert(p)
        record = sampler.accepted_records()[0]
        assert record.representative.index == 0  # expired point, kept as rep
        assert record.last.index == 3

    def test_time_window_expiry(self):
        config = SamplerConfig.create(1.0, 1, seed=1)
        sampler = FixedRateSlidingSampler(config, 1, TimeWindow(5.0))
        stream = pts([0.0, 10.0, 20.0], times=[0.0, 1.0, 10.0])
        for p in stream:
            sampler.insert(p)
        values = {r.representative.vector[0] for r in sampler.accepted_records()}
        assert values == {20.0}

    def test_evict_idempotent(self):
        sampler, _ = make(rate=1, window=SequenceWindow(2))
        stream = pts([0.0, 10.0, 20.0])
        for p in stream:
            sampler.insert(p)
        sampler.evict(stream[-1])
        count = sampler.candidate_count
        sampler.evict(stream[-1])
        assert sampler.candidate_count == count


class TestSampling:
    def test_sample_from_window(self):
        sampler, _ = make(rate=1, window=SequenceWindow(3))
        stream = pts([0.0, 10.0, 20.0, 30.0, 40.0])
        for p in stream:
            sampler.insert(p)
        rng = random.Random(0)
        for _ in range(20):
            value = sampler.sample(stream[-1], rng).vector[0]
            assert value in {20.0, 30.0, 40.0}

    def test_empty_window_raises(self):
        sampler, _ = make(rate=1, window=SequenceWindow(2))
        stream = pts([0.0, 10.0, 20.0])
        for p in stream:
            sampler.insert(p)
        far_future = StreamPoint((99.0,), 100)
        with pytest.raises(EmptySampleError):
            sampler.sample(far_future)

    def test_observation1_representative_inclusion_probability(self):
        """Observation 1(2): each window group's representative is in
        S_acc with probability 1/R."""
        hits = 0
        trials = 800
        window = SequenceWindow(100)
        for seed in range(trials):
            config = SamplerConfig.create(1.0, 1, seed=seed)
            sampler = FixedRateSlidingSampler(config, 4, window)
            sampler.insert(StreamPoint((0.0,), 0))
            hits += sampler.accepted_count
        assert 0.15 < hits / trials < 0.35  # target 1/4

    def test_sample_member_requires_flag(self):
        sampler, _ = make(rate=1)
        p = StreamPoint((0.0,), 0)
        sampler.insert(p)
        with pytest.raises(ParameterError):
            sampler.sample_member(p)

    def test_sample_member_in_window(self):
        config = SamplerConfig.create(1.0, 1, seed=2)
        sampler = FixedRateSlidingSampler(
            config, 1, SequenceWindow(3), track_members=True
        )
        stream = pts([0.0, 0.1, 0.2, 0.3, 0.4])
        for p in stream:
            sampler.insert(p)
        member = sampler.sample_member(stream[-1], random.Random(1))
        assert member.index >= 2  # only unexpired members


class TestHierarchySupport:
    def test_clear_resets(self):
        sampler, _ = make(rate=1)
        sampler.insert(StreamPoint((0.0,), 0))
        sampler.clear()
        assert sampler.candidate_count == 0
        assert sampler.accepted_count == 0

    def test_adopt_record_roundtrip(self):
        sampler, config = make(rate=1, window=SequenceWindow(50))
        donor, _ = make(config=config, rate=1, window=SequenceWindow(50))
        p = StreamPoint((0.0,), 0)
        donor.insert(p)
        record = donor.accepted_records()[0]
        sampler.adopt_record(record)
        assert sampler.candidate_count == 1
        assert sampler.find_group(p.vector, config.point_context(p.vector).cell_hash)

    def test_space_words_positive(self):
        sampler, _ = make(rate=1)
        sampler.insert(StreamPoint((0.0,), 0))
        assert sampler.space_words() > 0
