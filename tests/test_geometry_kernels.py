"""Differential tests: vectorised geometry kernels vs their scalar oracles.

Every kernel of :mod:`repro.geometry.kernels` (and the
:class:`~repro.core.chunk_geometry.ChunkGeometry` precompute built on
them) must be **bit-identical** to the scalar code it replaces - cells,
hashes and adjacency tuples feed ``state_fingerprint``, so a 1-ulp
divergence is a correctness bug, not a rounding nit.  The streams here
are adversarial by construction: cell-boundary points (exact multiples
of the grid side, with +-1-ulp perturbations), negative coordinates,
huge coordinates, and every dimension the vectorised adjacency serves
(1-4) plus the probe-only high dimensions (5, 8).
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import SamplerConfig
from repro.core.chunk_geometry import (
    ChunkGeometry,
    compute_chunk_geometry,
    materialize_chunk,
    set_vectorized_geometry,
)
from repro.geometry import kernels
from repro.geometry.adjacency import (
    brute_force_adjacent_cells,
    collect_adjacent,
)
from repro.geometry.grid import Grid
from repro.hashing.kwise import KWiseHash
from repro.hashing.mix import SplitMix64, splitmix64
from repro.hashing.sampling import SamplingHash

np = pytest.importorskip("numpy")

MASK64 = (1 << 64) - 1


def boundary_points(grid: Grid, count: int, seed: int) -> list[tuple]:
    """Adversarial points: uniform, lattice-exact, and 1-ulp off-lattice."""
    rng = random.Random(seed)
    dim = grid.dim
    side = grid.side
    points = []
    for _ in range(count):
        kind = rng.randrange(4)
        vector = []
        for axis in range(dim):
            if kind == 0:
                value = rng.uniform(-60.0, 60.0)
            else:
                value = grid.offset[axis] + rng.randrange(-40, 40) * side
                if kind == 2:
                    value = math.nextafter(value, math.inf)
                elif kind == 3:
                    value = math.nextafter(value, -math.inf)
            vector.append(value)
        points.append(tuple(vector))
    return points


class TestHashKernels:
    def test_int_hash_lanes_match_python_hash(self):
        values = [0, 1, -1, -2, 2, (1 << 61) - 1, -((1 << 61) - 1),
                  (1 << 61), -(1 << 61), 1234567891234, -987654321,
                  (1 << 62) - 1, -((1 << 62) - 1)]
        lanes = kernels.int_hash_lanes(np.array(values, dtype=np.int64))
        for value, lane in zip(values, lanes.tolist()):
            assert (hash(value) & MASK64) == lane, value

    def test_tuple_hashes_match_python_hash(self):
        rng = random.Random(1)
        for dim in (1, 2, 3, 4, 8):
            rows = [
                tuple(
                    rng.randrange(-(1 << 61), 1 << 61) for _ in range(dim)
                )
                for _ in range(200)
            ]
            rows += [(0,) * dim, (-1,) * dim, ((1 << 61) - 1,) * dim]
            hashed = kernels.tuple_hashes(np.array(rows, dtype=np.int64))
            for row, value in zip(rows, hashed.tolist()):
                assert (hash(row) & MASK64) == value, row

    def test_splitmix64_chunk_matches_scalar(self):
        rng = random.Random(2)
        keys = [rng.randrange(1 << 64) for _ in range(500)] + [0, MASK64]
        out = kernels.splitmix64_chunk(np.array(keys, dtype=np.uint64))
        assert out.tolist() == [splitmix64(k) for k in keys]

    def test_cell_ids_chunk_matches_grid_cell_id(self):
        grid = Grid(side=0.5, dim=3, offset=(0.1, 0.2, 0.3))
        rng = random.Random(3)
        cells = [
            tuple(rng.randrange(-1000, 1000) for _ in range(3))
            for _ in range(300)
        ]
        ids = kernels.cell_ids_chunk(np.array(cells, dtype=np.int64))
        assert ids.tolist() == [grid.cell_id(c) for c in cells]

    def test_splitmix_many_chunk_matches_many(self):
        base = SplitMix64(seed=99)
        keys = [random.Random(4).randrange(1 << 64) for _ in range(256)]
        arr = base.many_chunk(np.array(keys, dtype=np.uint64))
        assert arr.tolist() == base.many(keys)

    def test_sampling_hash_value_chunk_dispatch(self):
        # SplitMix64 base: vectorised; KWise base: scalar fallback.
        keys = list(range(100)) + [MASK64, 1 << 63]
        array = np.array(keys, dtype=np.uint64)
        for sampling in (
            SamplingHash(seed=5),
            SamplingHash(KWiseHash(k=4, seed=5)),
        ):
            assert sampling.value_chunk(array).tolist() == (
                sampling.value_many(keys)
            )


class TestCellKernels:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4, 8])
    def test_chunk_cells_and_hashes_match_grid(self, dim):
        config = SamplerConfig.create(1.0, dim, seed=dim)
        grid = config.grid
        points = boundary_points(grid, 400, seed=dim)
        geom = compute_chunk_geometry(config, points)
        assert geom is not None and geom.n == len(points)
        for index, point in enumerate(points):
            cell = grid.cell_of(point)
            assert geom.cell_at(index) == cell
            assert geom.cell_hashes[index] == config.cell_hash(cell)
            assert (
                tuple(geom.fracs[index].tolist())
                == grid.fractional_position(point)
            )

    def test_kwise_config_hashes_match(self):
        config = SamplerConfig.create(1.0, 2, seed=9, kwise=8)
        points = boundary_points(config.grid, 200, seed=9)
        geom = compute_chunk_geometry(config, points)
        for index, point in enumerate(points):
            assert geom.cell_hashes[index] == config.cell_hash(
                config.grid.cell_of(point)
            )

    def test_memo_hit_path_identical(self):
        # Second build of the same chunk is served from the id memo.
        config = SamplerConfig.create(1.0, 2, seed=11)
        points = boundary_points(config.grid, 100, seed=11)
        first = compute_chunk_geometry(config, points)
        assert config.cell_id_hash_memo  # misses were memoised
        second = compute_chunk_geometry(config, points)
        assert first.cell_hashes == second.cell_hashes

    def test_nonfinite_point_truncates_geometry(self):
        config = SamplerConfig.create(1.0, 2, seed=13)
        points = boundary_points(config.grid, 50, seed=13)
        points[20] = (float("nan"), 1.0)
        geom = compute_chunk_geometry(config, points)
        assert geom is not None and geom.n == 20

    def test_huge_coordinates_fall_back_to_scalar_tail(self):
        config = SamplerConfig.create(1.0, 1, seed=17)
        points = [(float(i),) for i in range(30)] + [(1e300,)]
        geom = compute_chunk_geometry(config, points)
        assert geom is not None and geom.n == 30

    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False
            ),
            min_size=8,
            max_size=40,
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_floor_division_property(self, values, seed):
        config = SamplerConfig.create(1.0, 1, seed=seed)
        grid = config.grid
        points = [(v,) for v in values]
        geom = compute_chunk_geometry(config, points)
        assert geom is not None
        for index, point in enumerate(points):
            assert geom.cell_at(index) == grid.cell_of(point)


class TestAdjacencyKernel:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_matches_collect_adjacent_cells_and_order(self, dim):
        config = SamplerConfig.create(1.0, dim, seed=21 + dim)
        grid = config.grid
        points = boundary_points(grid, 150, seed=21 + dim)
        geom = compute_chunk_geometry(config, points)
        flat, counts = kernels.adjacent_cells_chunk(
            geom._coords, geom.fracs, grid.side, config.alpha
        )
        position = 0
        flat_cells = list(map(tuple, flat.tolist()))
        for index, point in enumerate(points):
            count = int(counts[index])
            got = flat_cells[position : position + count]
            position += count
            want = collect_adjacent(
                grid, point, config.alpha, base_cell=grid.cell_of(point)
            )
            assert got == want, (dim, index)

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_matches_brute_force_oracle(self, dim):
        # Uniform points (no 1-ulp lattice adversaries: at those, the
        # scalar DFS itself can differ from the exact-distance oracle by
        # an ulp, and the kernel's contract is the DFS).
        config = SamplerConfig.create(1.0, dim, seed=71 + dim)
        grid = config.grid
        rng = random.Random(71 + dim)
        points = [
            tuple(rng.uniform(-30, 30) for _ in range(dim))
            for _ in range(60)
        ]
        geom = compute_chunk_geometry(config, points)
        flat, counts = kernels.adjacent_cells_chunk(
            geom._coords, geom.fracs, grid.side, config.alpha
        )
        flat_cells = list(map(tuple, flat.tolist()))
        position = 0
        for index, point in enumerate(points):
            count = int(counts[index])
            got = set(flat_cells[position : position + count])
            position += count
            assert got == brute_force_adjacent_cells(
                grid, point, config.alpha
            )

    def test_offset_table_covers_float_floor_rounding(self):
        # Regression: 1.0 // 0.1 == 9.0 in floats, but the scalar
        # _axis_moves loop still admits offset 10 (fl(10 * 0.1) == 1.0
        # fits the budget); the kernel's offset table must carry the
        # same headroom or it silently drops the outermost cell.
        grid = Grid(side=0.1, dim=1, offset=(0.0,))
        points = [(0.5,), (0.0,), (0.05,), (-0.31,)]
        coords = np.array(
            [grid.cell_of(p) for p in points], dtype=np.int64
        )
        fracs = np.array(
            [grid.fractional_position(p) for p in points], dtype=np.float64
        )
        flat, counts = kernels.adjacent_cells_chunk(coords, fracs, 0.1, 1.0)
        flat_cells = list(map(tuple, flat.tolist()))
        position = 0
        for index, point in enumerate(points):
            count = int(counts[index])
            got = flat_cells[position : position + count]
            position += count
            assert got == collect_adjacent(grid, point, 1.0)

    @pytest.mark.parametrize("side,radius", [(0.25, 1.0), (1.0, 1.0), (3.0, 1.0)])
    def test_multi_step_offsets(self, side, radius):
        # side < radius forces |offset| >= 2 moves per axis.
        grid = Grid(side=side, dim=2, offset=(0.1, 0.05))
        rng = random.Random(int(side * 100))
        points = [
            (rng.uniform(-10, 10), rng.uniform(-10, 10)) for _ in range(80)
        ]
        coords = np.array([grid.cell_of(p) for p in points], dtype=np.int64)
        fracs = np.array(
            [grid.fractional_position(p) for p in points], dtype=np.float64
        )
        flat, counts = kernels.adjacent_cells_chunk(
            coords, fracs, side, radius
        )
        flat_cells = list(map(tuple, flat.tolist()))
        position = 0
        for index, point in enumerate(points):
            count = int(counts[index])
            got = flat_cells[position : position + count]
            position += count
            assert got == collect_adjacent(grid, point, radius)

    def test_dimension_above_limit_returns_none(self):
        config = SamplerConfig.create(1.0, 5, seed=31)
        points = boundary_points(config.grid, 40, seed=31)
        geom = compute_chunk_geometry(config, points)
        assert (
            kernels.adjacent_cells_chunk(
                geom._coords, geom.fracs, config.grid.side, config.alpha
            )
            is None
        )
        # ... and the ChunkGeometry transparently serves the scalar DFS.
        for index, point in enumerate(points):
            assert geom.adj_hashes(index) == config.adj_hashes(
                point, cell=config.grid.cell_of(point)
            )

    @pytest.mark.parametrize("dim", [1, 2, 4])
    def test_eager_table_matches_scalar_adjacency(self, dim):
        config = SamplerConfig.create(1.0, dim, seed=41 + dim)
        points = boundary_points(config.grid, 200, seed=41 + dim)
        geom = compute_chunk_geometry(config, points)
        # Request adjacency for every point: the first few run the
        # scalar DFS, then the eager vectorised table takes over; both
        # regimes must agree with the scalar oracle.
        for index, point in enumerate(points):
            assert geom.adj_hashes(index) == config.adj_hashes(
                point, cell=config.grid.cell_of(point)
            )
        assert geom._adj_table is not None  # the eager path actually ran


class TestHighDimProbe:
    @pytest.mark.parametrize("dim", [3, 5, 8])
    @pytest.mark.parametrize("mask", [3, 63, 4095])
    def test_ignorable_implies_no_sampled_adjacent_cell(self, dim, mask):
        config = SamplerConfig.create(1.0, dim, seed=dim * 100 + 7)
        grid = config.grid
        rng = random.Random(dim)
        points = []
        for _ in range(300):
            vector = [rng.uniform(-40, 40) for _ in range(dim)]
            if rng.random() < 0.5:  # park near a cell face
                axis = rng.randrange(dim)
                vector[axis] = (
                    grid.offset[axis]
                    + rng.randrange(-5, 5) * grid.side
                    + rng.choice([0.0, 1e-9, 0.5, 0.999, grid.side - 1e-9])
                )
            points.append(tuple(vector))
        geom = compute_chunk_geometry(config, points)
        ignorable = geom.high_dim_ignorable(mask)
        assert ignorable is not None
        assert any(ignorable)  # the probe actually prunes something
        for index, point in enumerate(points):
            if not ignorable[index]:
                continue
            cell = grid.cell_of(point)
            for neighbour in collect_adjacent(
                grid, point, config.alpha, base_cell=cell
            ):
                if neighbour != cell:
                    assert config.cell_hash(neighbour) & mask != 0

    def test_probe_disabled_when_cells_not_larger_than_alpha(self):
        # dim 2 default side is alpha/sqrt(2) < alpha: premise broken.
        config = SamplerConfig.create(1.0, 2, seed=3)
        geom = compute_chunk_geometry(
            config, boundary_points(config.grid, 40, seed=3)
        )
        assert geom.high_dim_ignorable(7) is None

    def test_probe_verdicts_survive_rate_doubling(self):
        # Nesting: ignorable at mask R-1 must stay ignorable at 2R-1.
        config = SamplerConfig.create(1.0, 3, seed=5)
        points = boundary_points(config.grid, 300, seed=5)
        geom = compute_chunk_geometry(config, points)
        coarse = geom.high_dim_ignorable(7)
        fine = compute_chunk_geometry(config, points).high_dim_ignorable(15)
        for at_coarse, at_fine in zip(coarse, fine):
            if at_coarse:
                assert at_fine

    @staticmethod
    def _corner_parked_points(config, count, seed):
        """1-ulp adversaries parked at cell corners: every axis sits on
        (or one ulp off) a lattice line, so the diagonal neighbourhood
        is feasible on purpose."""
        grid = config.grid
        rng = random.Random(seed)
        points = []
        for _ in range(count):
            vector = []
            for axis in range(grid.dim):
                value = (
                    grid.offset[axis] + rng.randrange(-6, 6) * grid.side
                )
                nudge = rng.randrange(3)
                if nudge == 1:
                    value = math.nextafter(value, math.inf)
                elif nudge == 2:
                    value = math.nextafter(value, -math.inf)
                vector.append(value)
            points.append(tuple(vector))
        return points

    @pytest.mark.parametrize("dim", [3, 4, 5])
    @pytest.mark.parametrize("mask", [63, 1023])
    def test_diagonal_hashing_stays_sound_at_corners(self, dim, mask):
        # Corner-parked points have feasible diagonals by construction;
        # the probe now hashes them instead of giving up, and every
        # True verdict must still be backed by the scalar adjacency.
        config = SamplerConfig.create(1.0, dim, seed=dim * 37 + 1)
        grid = config.grid
        points = self._corner_parked_points(config, 200, seed=dim)
        geom = compute_chunk_geometry(config, points)
        ignorable = geom.high_dim_ignorable(mask)
        assert ignorable is not None
        for index, point in enumerate(points):
            if not ignorable[index]:
                continue
            cell = grid.cell_of(point)
            for neighbour in collect_adjacent(
                grid, point, config.alpha, base_cell=cell
            ):
                if neighbour != cell:
                    assert config.cell_hash(neighbour) & mask != 0

    def test_diagonal_hashing_prunes_corner_points(self):
        # The payoff over the old conservative give-up: at a sparse
        # mask some corner-parked points (feasible diagonals, none of
        # them sampled) must now come back ignorable - the old probe
        # marked every such point not-ignorable unconditionally.
        config = SamplerConfig.create(1.0, 4, seed=11)
        points = self._corner_parked_points(config, 300, seed=29)
        geom = compute_chunk_geometry(config, points)
        fracs = geom.fracs
        budget = config.alpha * config.alpha * (1.0 + 1e-9)
        minus = fracs * fracs
        rem = config.grid.side - fracs
        plus = rem * rem
        axis_min = np.minimum(
            np.where(minus <= budget, minus, np.inf),
            np.where(plus <= budget, plus, np.inf),
        )
        two_cheapest = np.partition(axis_min, 1, axis=1)[:, :2]
        feasible_diagonal = two_cheapest.sum(axis=1) <= budget
        assert feasible_diagonal.any()  # adversaries did their job
        ignorable = np.array(geom.high_dim_ignorable(2047), dtype=bool)
        assert (ignorable & feasible_diagonal).any()

    def test_diagonal_cell_cap_falls_back_conservatively(self, monkeypatch):
        # A cap of zero forces every feasible-diagonal point onto the
        # old conservative verdict; soundness must be unaffected (the
        # point just goes to the exact path).
        monkeypatch.setattr(kernels, "_DIAGONAL_CELL_CAP", 0)
        config = SamplerConfig.create(1.0, 3, seed=13)
        points = self._corner_parked_points(config, 120, seed=13)
        capped = compute_chunk_geometry(config, points).high_dim_ignorable(
            63
        )
        monkeypatch.undo()
        full = compute_chunk_geometry(config, points).high_dim_ignorable(63)
        # Capped verdicts are a subset of the full ones: the cap can
        # only demote True -> False, never invent a True.
        for with_cap, without in zip(capped, full):
            if with_cap:
                assert without

    def test_feasible_diagonal_cells_enumeration(self):
        # Direct unit check of the DFS: a point at the exact corner of
        # its cell (zero cost to every lower face) reaches all lower
        # diagonals and nothing else at a tiny budget.
        cells = kernels._feasible_diagonal_cells(
            [5, -3], [0.0, 0.0], [4.0, 4.0], 1.0
        )
        assert cells == [[4, -4]]
        # Budget admitting +1 on axis 0 too (cost 0.5 each way).
        cells = kernels._feasible_diagonal_cells(
            [0, 0], [0.5, 0.5], [0.5, 0.5], 1.0
        )
        assert sorted(map(tuple, cells)) == [
            (-1, -1),
            (-1, 1),
            (1, -1),
            (1, 1),
        ]


class TestLowDimProbe:
    @pytest.mark.parametrize("dim", [1, 2])
    @pytest.mark.parametrize("mask", [3, 63, 4095])
    def test_exactly_matches_scalar_adjacency_oracle(self, dim, mask):
        # The probe is exact, not conservative: verdicts must equal the
        # scalar adjacency sweep in both directions, ulp adversaries
        # included.
        config = SamplerConfig.create(1.0, dim, seed=dim * 53 + 3)
        grid = config.grid
        points = boundary_points(grid, 400, seed=dim * 7 + mask)
        geom = compute_chunk_geometry(config, points)
        verdicts = geom.low_dim_ignorable(mask)
        assert verdicts is not None
        for point, verdict in zip(points, verdicts):
            cell = grid.cell_of(point)
            oracle = all(
                config.cell_hash(neighbour) & mask != 0
                for neighbour in collect_adjacent(
                    grid, point, config.alpha, base_cell=cell
                )
            )
            assert verdict == oracle

    def test_prunes_at_least_the_corner_filter(self):
        # Every point the scalar corner filter skips, the exact probe
        # must skip too (it subsumes the conservative filter).
        config = SamplerConfig.create(1.0, 2, seed=91)
        grid = config.grid
        side = grid.side
        mask = 7
        alpha_eps = config.alpha * config.alpha * (1.0 + 1e-9)
        points = boundary_points(grid, 400, seed=17)
        geom = compute_chunk_geometry(config, points)
        verdicts = geom.low_dim_ignorable(mask)
        skipped_by_filter = []
        for point in points:
            cell = grid.cell_of(point)
            if config.cell_hash(cell) & mask == 0:
                skipped_by_filter.append(False)
                continue
            corners = [
                corner
                for corner, value in config.conservative_neighborhood(cell)
                if value & mask == 0
            ]
            skip = True
            for corner in corners:
                acc = 0.0
                for x, low in zip(point, corner):
                    if x < low:
                        diff = low - x
                    else:
                        diff = x - low - side
                        if diff <= 0.0:
                            continue
                    acc += diff * diff
                    if acc > alpha_eps:
                        break
                else:
                    skip = False
                    break
            skipped_by_filter.append(skip)
        assert any(skipped_by_filter)
        for verdict, filtered in zip(verdicts, skipped_by_filter):
            if filtered:
                assert verdict

    def test_verdicts_survive_rate_doubling(self):
        config = SamplerConfig.create(1.0, 2, seed=19)
        points = boundary_points(config.grid, 300, seed=19)
        coarse = compute_chunk_geometry(config, points).low_dim_ignorable(7)
        fine = compute_chunk_geometry(config, points).low_dim_ignorable(15)
        for at_coarse, at_fine in zip(coarse, fine):
            if at_coarse:
                assert at_fine

    def test_unservable_dimension_returns_none(self):
        # Above the vectorised adjacency limit the probe declines and
        # callers keep the scalar corner filter.
        config = SamplerConfig.create(1.0, kernels.MAX_ADJACENCY_DIM + 1, seed=2)
        points = boundary_points(config.grid, 40, seed=2)
        geom = compute_chunk_geometry(config, points)
        assert geom.low_dim_ignorable(7) is None


class TestMaterializeChunk:
    def test_valid_prefix_and_dim_error(self):
        error = ValueError("boom")
        pts, vectors, got, offender = materialize_chunk(
            [(0.0, 1.0), (2.0, 3.0), (4.0, 5.0, 6.0), (7.0, 8.0)],
            2,
            10,
            lambda actual: error,
        )
        assert [p.index for p in pts] == [10, 11]
        assert vectors == [(0.0, 1.0), (2.0, 3.0)]
        assert got is error and offender is None

    def test_coercion_error_stops_at_offender(self):
        pts, vectors, got, offender = materialize_chunk(
            [(0.0,), ("bad",), (1.0,)], 1, 0, lambda actual: ValueError()
        )
        assert len(pts) == 1 and isinstance(got, ValueError)

    def test_stale_geometry_rejected(self):
        # A geometry built for a different chunk must be refused (and
        # recomputed), not silently corrupt the sampler's state.
        from repro.core.infinite_window import RobustL0SamplerIW
        from repro.engine.equivalence import state_fingerprint

        rng = random.Random(0)
        chunk_a = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(64)]
        chunk_b = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(64)]
        stale = RobustL0SamplerIW(1.0, 2, seed=1)
        geometry_a = compute_chunk_geometry(stale.config, chunk_a)
        assert geometry_a.valid_for(stale.config, chunk_a)
        assert not geometry_a.valid_for(stale.config, chunk_b)
        stale.process_many(chunk_b, geometry=geometry_a)
        clean = RobustL0SamplerIW(1.0, 2, seed=1)
        clean.process_many(chunk_b)
        assert state_fingerprint(stale) == state_fingerprint(clean)

    def test_generator_input_streams_in_bounded_chunks(self):
        # process_many on a raw generator must not materialise the whole
        # stream (it chunks internally at DEFAULT_BATCH_SIZE) and must
        # stay state-equivalent to per-point ingestion.
        from repro.core.infinite_window import RobustL0SamplerIW
        from repro.engine.equivalence import state_fingerprint

        def stream():
            rng = random.Random(5)
            for _ in range(3000):
                yield (rng.uniform(0, 50), rng.uniform(0, 50))

        streamed = RobustL0SamplerIW(1.0, 2, seed=2)
        assert streamed.process_many(stream()) == 3000
        reference = RobustL0SamplerIW(1.0, 2, seed=2)
        for point in stream():
            reference.insert(point)
        assert state_fingerprint(streamed) == state_fingerprint(reference)

    def test_toggle_disables_vectorised_path(self):
        config = SamplerConfig.create(1.0, 2, seed=1)
        points = boundary_points(config.grid, 50, seed=1)
        previous = set_vectorized_geometry(False)
        try:
            assert compute_chunk_geometry(config, points) is None
        finally:
            set_vectorized_geometry(previous)
        assert isinstance(
            compute_chunk_geometry(config, points), ChunkGeometry
        )
