"""Executor-equivalence matrix: serial vs thread vs process pipelines.

The contract (see :mod:`repro.engine.executors`): *where* shard work
runs is never observable in pipeline state.  For the same spec and the
same dealt chunk sequence, every executor must leave the pipeline
``state_fingerprint``-identical to the serial one - including empty
batches, single-shard pipelines, and mid-stream checkpoint/resume under
the process executor.  The Hypothesis twin of this matrix lives in
``tests/test_property_equivalence.py``.
"""

from __future__ import annotations

import json
import os
import random
import signal

import pytest

from repro.api import PipelineSpec, build
from repro.distributed.coordinator import DistributedRobustSampler
from repro.engine import state_fingerprint
from repro.engine import executors as executors_module
from repro.engine.executors import (
    EXECUTOR_NAMES,
    TRANSPORT_NAMES,
    DeferredStates,
    ProcessShardExecutor,
    _owned_chunk,
    _owned_shards,
    _resolve_workers,
    resolve_state,
)
from repro.errors import EmptySampleError, ExecutorError, ParameterError
from repro.persist import summary_from_state, summary_to_state


def group_stream(n=360, seed=51, groups=10):
    rng = random.Random(seed)
    return [
        (25.0 * rng.randrange(groups) + rng.uniform(0, 0.4),)
        for _ in range(n)
    ]


def make_pipeline(
    executor, *, shards=3, workers=2, batch_size=32, seed=13
):
    spec = PipelineSpec(
        alpha=1.0,
        dim=1,
        seed=seed,
        num_shards=shards,
        batch_size=batch_size,
        executor=executor,
        num_workers=workers,
    )
    return build("batch-pipeline", spec)


class TestExecutorEquivalenceMatrix:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    @pytest.mark.parametrize(
        "shards,workers",
        [(1, 1), (3, 2), (4, None)],
        ids=["single-shard", "more-shards-than-workers", "worker-per-shard"],
    )
    def test_fingerprint_identical_to_serial(self, executor, shards, workers):
        stream = group_stream()
        serial = make_pipeline("serial", shards=shards, workers=None)
        serial.extend(stream)
        with make_pipeline(executor, shards=shards, workers=workers) as twin:
            twin.extend(stream)
            assert state_fingerprint(twin) == state_fingerprint(serial)
            # The streaming merge folds in deterministic shard order, so
            # even the merged union sampler is bit-identical.
            assert state_fingerprint(twin.merge()) == state_fingerprint(
                serial.merge()
            )
            assert twin.estimate_f0() == serial.estimate_f0()
            assert twin.sample(random.Random(7)) == serial.sample(
                random.Random(7)
            )

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_empty_batches_and_empty_stream(self, executor):
        serial = make_pipeline("serial")
        with make_pipeline(executor) as twin:
            # Empty stream: every shard stays empty, queries say so.
            assert twin.extend([]) == 0
            assert state_fingerprint(twin) == state_fingerprint(serial)
            with pytest.raises(EmptySampleError):
                twin.sample(random.Random(1))
            # Interleaved empty batches advance the round-robin cursor
            # exactly like the serial pipeline.
            stream = group_stream(90, seed=3)
            for pipeline in (serial, twin):
                pipeline.submit([])
                pipeline.extend(stream)
                pipeline.submit([])
            assert twin.points_seen == serial.points_seen == 90
            assert state_fingerprint(twin) == state_fingerprint(serial)

    def test_mid_stream_checkpoint_resume_under_process_executor(self):
        stream = group_stream(480, seed=29)
        serial = make_pipeline("serial")
        serial.extend(stream)

        with make_pipeline("process") as interrupted:
            interrupted.extend(stream[:320])  # chunk-aligned interruption
            envelope = json.loads(
                json.dumps(summary_to_state(interrupted))
            )
        assert envelope["state"]["spec"]["executor"] == "process"
        resumed = summary_from_state(envelope)
        try:
            assert resumed.points_seen == 320
            resumed.extend(stream[320:])  # restarts process workers lazily
            assert state_fingerprint(resumed) == state_fingerprint(serial)
            assert resumed.estimate_f0() == serial.estimate_f0()
        finally:
            resumed.close()

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_ingestion_continues_after_close(self, executor):
        stream = group_stream(200, seed=7)
        serial = make_pipeline("serial")
        serial.extend(stream)
        pipeline = make_pipeline(executor)
        pipeline.extend(stream[:96])
        pipeline.close()  # syncs, releases workers
        pipeline.extend(stream[96:])  # lazily starts a fresh executor
        try:
            assert state_fingerprint(pipeline) == state_fingerprint(serial)
        finally:
            pipeline.close()
        pipeline.close()  # idempotent


class TestCallerBufferReuse:
    """Regression: asynchronous executors must own their chunks.  A
    caller that reuses (clears/refills) one batch buffer across submits
    worked with the serial executor but shipped mutated data to thread/
    process workers before the copy-on-submit fix."""

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_reused_batch_buffer_is_safe(self, executor):
        chunks = [
            group_stream(24, seed=seed, groups=6) for seed in range(8)
        ]
        serial = make_pipeline("serial")
        for chunk in chunks:
            serial.submit(chunk)
        with make_pipeline(executor) as twin:
            buffer = []
            for chunk in chunks:
                buffer.clear()
                buffer.extend(chunk)
                twin.submit(buffer)
            buffer.clear()  # mutate once more while workers may still run
            assert state_fingerprint(twin) == state_fingerprint(serial)


class TestExecutorFailures:
    @pytest.mark.parametrize("executor", ["thread", "process", "remote"])
    def test_worker_failure_surfaces_at_sync(self, executor):
        pipeline = make_pipeline(executor)
        pipeline.extend(group_stream(64, seed=1))
        pipeline.submit([(None,)])  # unconvertible point poisons a worker
        with pytest.raises(ExecutorError):
            pipeline.sync()
        # The failure is sticky and the pipeline stays dirty: closing
        # still reports it rather than silently dropping the lost work.
        with pytest.raises(ExecutorError):
            pipeline.close()
        # ... but the workers are released regardless.
        assert pipeline._executor is None
        # Regression: after the failed close released the workers, reads
        # must keep raising (the queued work was lost) instead of
        # serving stale shard states as a silently corrupt checkpoint.
        with pytest.raises(ExecutorError):
            pipeline.to_state()
        with pytest.raises(ExecutorError):
            pipeline.merge()

    def test_extend_rejects_zero_batch_size(self):
        # Regression: extend(batch_size=0) silently fell back to the
        # spec's chunk size instead of raising like every other surface.
        pipeline = make_pipeline("serial")
        with pytest.raises(ParameterError, match=">= 1"):
            pipeline.extend([(0.0,)], batch_size=0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ParameterError, match="executor"):
            PipelineSpec(alpha=1.0, dim=1, executor="warp")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ParameterError, match="num_workers"):
            PipelineSpec(alpha=1.0, dim=1, num_workers=0)


class TestTransportMatrix:
    """Every transport and scheduling mode is state-unobservable."""

    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    @pytest.mark.parametrize(
        "work_stealing", [True, False], ids=["stealing", "static"]
    )
    def test_fingerprint_identical_across_transports(
        self, transport, work_stealing
    ):
        stream = group_stream(300, seed=17)
        serial = make_pipeline("serial")
        serial.extend(stream)
        spec = PipelineSpec(
            alpha=1.0,
            dim=1,
            seed=13,
            num_shards=3,
            batch_size=32,
            executor="process",
            num_workers=2,
            transport=transport,
            work_stealing=work_stealing,
        )
        with build("batch-pipeline", spec) as twin:
            twin.extend(stream)
            stats = twin.executor_stats()
            assert state_fingerprint(twin) == state_fingerprint(serial)
        if transport == "pickle":
            # The legacy transport is forced for every chunk.
            assert stats["pickle_chunks"] == stats["chunks"] > 0
            assert stats["shm_chunks"] == 0

    def test_pickle_fallback_for_streampoint_chunks(self):
        # StreamPoints are not sequences, so ``np.asarray`` rejects the
        # chunk and ``auto`` falls back to the pickle transport for
        # exactly those chunks - fingerprint-identical either way.
        from repro.streams import StreamPoint

        raw = group_stream(160, seed=23)
        points = [
            StreamPoint(vector, index) for index, vector in enumerate(raw)
        ]
        chunks = [points[i : i + 40] for i in range(0, len(points), 40)]

        serial = DistributedRobustSampler(1.0, 1, num_shards=2, seed=5)
        for chunk in chunks:
            serial.route_many(chunk, 0)

        parallel = DistributedRobustSampler(1.0, 1, num_shards=2, seed=5)
        executor = ProcessShardExecutor(parallel, num_workers=2)
        try:
            for chunk in chunks:
                executor.submit(0, chunk)
            for shard_id, state in executor.drain():
                if state is not None:
                    parallel.restore_shard(
                        shard_id, resolve_state(shard_id, state)
                    )
            stats = executor.stats()
        finally:
            executor.close()
        assert stats["pickle_chunks"] == len(chunks)
        assert stats["shm_chunks"] == 0
        assert state_fingerprint(parallel) == state_fingerprint(serial)

    def test_invalid_transport_rejected(self):
        with pytest.raises(ParameterError, match="transport"):
            PipelineSpec(alpha=1.0, dim=1, transport="carrier-pigeon")


class TestWorkStealing:
    def test_forced_migration_preserves_shard_fifo(self, monkeypatch):
        """Drive the scheduler into stealing and prove equivalence.

        Depth 1 plus a steal threshold of 1 makes the second submit to
        a single hot shard migrate it to the idle worker (the hot
        worker is at its depth limit while the other starves), so the
        migration path - release, flushed state hand-off, re-adoption
        with the next sequence number - is exercised deterministically
        rather than by benchmark-scale luck.
        """
        monkeypatch.setattr(executors_module, "_DISPATCH_DEPTH", 1)
        monkeypatch.setattr(executors_module, "_STEAL_MIN_PENDING", 1)
        chunks = [group_stream(200, seed=seed, groups=8) for seed in range(10)]

        serial = DistributedRobustSampler(1.0, 1, num_shards=2, seed=5)
        for chunk in chunks:
            serial.route_many(chunk, 0)

        parallel = DistributedRobustSampler(1.0, 1, num_shards=2, seed=5)
        executor = ProcessShardExecutor(parallel, num_workers=2)
        try:
            for chunk in chunks:
                executor.submit(0, chunk)
            for shard_id, state in executor.drain():
                if state is not None:
                    parallel.restore_shard(
                        shard_id, resolve_state(shard_id, state)
                    )
            migrations = executor.stats()["migrations"]
        finally:
            executor.close()
        assert migrations >= 1
        assert state_fingerprint(parallel) == state_fingerprint(serial)

    def test_single_worker_never_migrates(self):
        with make_pipeline("process", workers=1) as pipeline:
            pipeline.extend(group_stream(240, seed=9))
            stats = pipeline.executor_stats()
        assert stats["migrations"] == 0


class TestDrainStallDetection:
    def test_stopped_worker_bounds_the_drain(self, monkeypatch):
        """A wedged (SIGSTOPped) worker fails the drain within the
        stall budget instead of hanging the submitter forever."""
        monkeypatch.setattr(executors_module, "_DRAIN_STALL_SECONDS", 1.0)
        coordinator = DistributedRobustSampler(1.0, 1, num_shards=2, seed=3)
        executor = ProcessShardExecutor(coordinator, num_workers=1)
        try:
            pid = executor._workers[0].pid
            os.kill(pid, signal.SIGSTOP)
            try:
                executor.submit(0, group_stream(64, seed=2))
                with pytest.raises(ExecutorError, match="stalled"):
                    list(executor.drain())
            finally:
                os.kill(pid, signal.SIGCONT)
        finally:
            executor.close()

    def test_killed_worker_reports_exit_code(self):
        coordinator = DistributedRobustSampler(1.0, 1, num_shards=2, seed=3)
        executor = ProcessShardExecutor(coordinator, num_workers=1)
        try:
            worker = executor._workers[0]
            os.kill(worker.pid, signal.SIGKILL)
            worker.join(timeout=5.0)
            executor.submit(0, group_stream(64, seed=2))
            with pytest.raises(ExecutorError, match="died without reporting"):
                list(executor.drain())
        finally:
            executor.close()


class TestDeferredStates:
    def test_decode_on_first_get(self):
        import pickle

        deferred = DeferredStates(
            pickle.dumps([(0, {"a": 1}), (2, {"b": 2})])
        )
        assert deferred.get(0) == {"a": 1}
        assert deferred._blob == b""  # decoded exactly once
        assert deferred.get(2) == {"b": 2}

    def test_resolve_state_passthrough(self):
        assert resolve_state(0, None) is None
        plain = {"k": "v"}
        assert resolve_state(0, plain) is plain

    def test_sync_then_continue_matches_serial(self):
        # sync() parks DeferredStates handles on the pipeline; further
        # ingestion and every read path must resolve them lazily and
        # still match the serial fingerprint.
        stream = group_stream(400, seed=31)
        serial = make_pipeline("serial")
        serial.extend(stream)
        with make_pipeline("process") as twin:
            twin.extend(stream[:192])
            twin.sync()  # states come home deferred
            twin.extend(stream[192:])  # lazy restore must re-adopt
            assert state_fingerprint(twin) == state_fingerprint(serial)
            assert state_fingerprint(twin.merge()) == state_fingerprint(
                serial.merge()
            )


class TestOwnedChunk:
    def test_tuple_kept_without_copy(self):
        chunk = ((0.0,), (1.0,))
        assert _owned_chunk(chunk) is chunk

    def test_list_is_snapshotted(self):
        chunk = [(0.0,), (1.0,)]
        owned = _owned_chunk(chunk)
        assert owned == chunk and owned is not chunk
        chunk.clear()
        assert len(owned) == 2

    def test_ndarray_is_deep_copied(self):
        np = pytest.importorskip("numpy")
        chunk = np.zeros((4, 1))
        owned = _owned_chunk(chunk)
        chunk[0, 0] = 99.0
        assert owned[0, 0] == 0.0


class TestWorkerMapping:
    def test_striping_covers_all_shards_exactly_once(self):
        for shards in (1, 3, 5, 8):
            for workers in (1, 2, 3, shards):
                owned = [
                    shard
                    for worker in range(workers)
                    for shard in _owned_shards(worker, shards, workers)
                ]
                assert sorted(owned) == list(range(shards))

    def test_workers_capped_at_shards(self):
        assert _resolve_workers(None, 3) == 3
        assert _resolve_workers(8, 3) == 3
        assert _resolve_workers(2, 3) == 2
