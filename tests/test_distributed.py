"""Tests for the distributed robust sampler."""

from __future__ import annotations

import collections
import random

import pytest

from repro.core.infinite_window import RobustL0SamplerIW
from repro.distributed.coordinator import DistributedRobustSampler
from repro.engine.pipeline import BatchPipeline
from repro.errors import EmptySampleError, ParameterError
from repro.metrics.accuracy import chi_square_uniformity


def feed(coordinator, num_groups, copies=3, seed=0):
    rng = random.Random(seed)
    stream = []
    for g in range(num_groups):
        for _ in range(copies):
            stream.append((25.0 * g + rng.uniform(0, 0.4),))
    rng.shuffle(stream)
    coordinator.scatter(stream, rng=rng)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ParameterError):
            DistributedRobustSampler(1.0, 1, num_shards=0)

    def test_shards_share_config(self):
        coordinator = DistributedRobustSampler(1.0, 2, num_shards=3, seed=1)
        configs = {id(coordinator.shard(i).config) for i in range(3)}
        assert len(configs) == 1


class TestMergeSemantics:
    def test_empty_merge(self):
        coordinator = DistributedRobustSampler(1.0, 1, num_shards=2, seed=0)
        with pytest.raises(EmptySampleError):
            coordinator.sample()

    def test_cross_shard_group_deduplicated(self):
        coordinator = DistributedRobustSampler(1.0, 1, num_shards=2, seed=2)
        coordinator.route((0.0,), shard=0)
        coordinator.route((0.2,), shard=1)  # same group, other shard
        coordinator.route((50.0,), shard=1)
        merged = coordinator.merged_sampler()
        assert merged.num_candidate_groups == 2

    def test_merge_counts_pooled(self):
        coordinator = DistributedRobustSampler(1.0, 1, num_shards=2, seed=3)
        for _ in range(4):
            coordinator.route((0.0,), shard=0)
        for _ in range(5):
            coordinator.route((0.1,), shard=1)
        merged = coordinator.merged_sampler()
        record = next(iter(merged._store.records()))
        assert record.count == 9

    def test_merge_matches_group_count(self):
        coordinator = DistributedRobustSampler(
            1.0, 1, num_shards=4, seed=4, expected_stream_length=400
        )
        feed(coordinator, 80, seed=4)
        merged = coordinator.merged_sampler()
        estimate = merged.estimate_f0()
        assert 30 <= estimate <= 200  # true 80

    def test_merge_respects_rate_invariant(self):
        coordinator = DistributedRobustSampler(
            1.0, 1, num_shards=3, seed=5, expected_stream_length=900
        )
        feed(coordinator, 300, seed=5)
        merged = coordinator.merged_sampler()
        mask = merged.rate_denominator - 1
        for record in merged._store.accepted_records():
            assert record.cell_hash & mask == 0

    def test_merged_accept_capacity(self):
        coordinator = DistributedRobustSampler(
            1.0, 1, num_shards=3, seed=6, expected_stream_length=900
        )
        feed(coordinator, 300, seed=6)
        merged = coordinator.merged_sampler()
        assert merged.accept_size <= merged._policy.threshold()

    def test_communication_is_sketch_sized(self):
        coordinator = DistributedRobustSampler(
            1.0, 1, num_shards=3, seed=7, expected_stream_length=5000
        )
        feed(coordinator, 500, copies=10, seed=7)
        # Stream is 5000 points x 3 words; shipping the sketches must cost
        # a small fraction of shipping the data.
        stream_words = 5000 * 3
        assert coordinator.communication_words() < stream_words / 4


class TestBatchPipelineOracle:
    """BatchPipeline shard-merge vs a single sampler over the union.

    Both sides share one SamplerConfig, so group-level decisions (which
    cells are sampled, who is accepted) are identical; the oracle checks
    that dealing the interleaved union stream across shards in batches
    and merging reproduces the single-sampler view of the same stream.
    """

    @staticmethod
    def union_stream(num_groups, copies, seed):
        rng = random.Random(seed)
        stream = []
        for g in range(num_groups):
            for _ in range(copies):
                stream.append((25.0 * g + rng.uniform(0, 0.4),))
        rng.shuffle(stream)
        return stream

    def test_merge_matches_single_sampler_over_union(self):
        num_groups = 20
        stream = self.union_stream(num_groups, copies=15, seed=101)
        pipeline = BatchPipeline(
            1.0, 1, num_shards=3, batch_size=16, seed=103
        )
        pipeline.extend(stream)
        # The single oracle sampler shares the pipeline's exact config.
        single = RobustL0SamplerIW(1.0, 1, config=pipeline.config)
        single.extend(stream)

        merged = pipeline.merge()
        assert merged.points_seen == single.points_seen == len(stream)
        # Few groups -> nobody's rate ever halves, so the merge must see
        # exactly the groups the single sampler sees.
        assert merged.rate_denominator == single.rate_denominator == 1
        assert merged.num_candidate_groups == single.num_candidate_groups
        assert merged.accept_size == single.accept_size
        assert merged.estimate_f0() == single.estimate_f0()

        def group_ids(sampler):
            return sorted(
                round(r.vector[0] // 25.0)
                for r in sampler.accepted_representatives()
            )

        assert group_ids(merged) == group_ids(single)
        # Pooled per-group counts also agree with the union stream.
        merged_counts = sorted(
            record.count for record in merged._store.records()
        )
        single_counts = sorted(
            record.count for record in single._store.records()
        )
        assert merged_counts == single_counts

    def test_pipeline_round_robin_is_deterministic(self):
        stream = self.union_stream(12, copies=6, seed=7)
        runs = []
        for _ in range(2):
            pipeline = BatchPipeline(
                1.0, 1, num_shards=4, batch_size=8, seed=11
            )
            pipeline.extend(stream)
            runs.append(
                [
                    pipeline.shard(i).points_seen
                    for i in range(pipeline.num_shards)
                ]
            )
        assert runs[0] == runs[1]
        assert sum(runs[0]) == len(stream)

    def test_pipeline_sample_comes_from_union_group(self):
        stream = self.union_stream(8, copies=10, seed=13)
        pipeline = BatchPipeline(
            1.0, 1, num_shards=2, batch_size=32, seed=17
        )
        pipeline.extend(stream)
        sample = pipeline.sample(random.Random(19))
        assert 0 <= round(sample.vector[0] // 25.0) <= 7
        assert pipeline.communication_words() > 0


class TestPipelineCheckpoint:
    """BatchPipeline shards checkpoint/restore mid-stream, exactly."""

    @staticmethod
    def stream(n=480, seed=51):
        rng = random.Random(seed)
        return [(25.0 * rng.randrange(10) + rng.uniform(0, 0.4),) for _ in range(n)]

    def test_mid_stream_checkpoint_is_fingerprint_identical(self):
        import json

        from repro.engine import state_fingerprint
        from repro.persist import summary_from_state, summary_to_state

        stream = self.stream()
        kwargs = dict(num_shards=3, batch_size=32, seed=13)
        uninterrupted = BatchPipeline(1.0, 1, **kwargs)
        uninterrupted.extend(stream)

        interrupted = BatchPipeline(1.0, 1, **kwargs)
        interrupted.extend(stream[:320])  # chunk-aligned interruption
        envelope = json.loads(json.dumps(summary_to_state(interrupted)))
        assert envelope["summary"] == "batch-pipeline"
        resumed = summary_from_state(envelope)
        assert resumed.points_seen == 320
        assert resumed._next_shard == interrupted._next_shard
        resumed.extend(stream[320:])

        assert state_fingerprint(resumed) == state_fingerprint(uninterrupted)
        # The restored pipeline's merge answers match too.
        assert resumed.estimate_f0() == uninterrupted.estimate_f0()

    def test_restored_shards_share_one_config(self):
        from repro.persist import summary_from_state, summary_to_state

        pipeline = BatchPipeline(1.0, 1, num_shards=3, seed=5)
        pipeline.extend(self.stream(100))
        restored = summary_from_state(summary_to_state(pipeline))
        configs = {
            id(restored.shard(i).config) for i in range(restored.num_shards)
        }
        assert len(configs) == 1
        assert restored.config is restored.shard(0).config

    def test_spec_constructed_pipeline(self):
        from repro.api import PipelineSpec, build

        spec = PipelineSpec(
            alpha=1.0, dim=1, seed=11, num_shards=3, batch_size=4
        )
        via_registry = build("batch-pipeline", spec)
        via_ctor = BatchPipeline(spec=spec)
        stream = self.stream(120)
        via_registry.extend(stream)
        via_ctor.extend(stream)
        from repro.engine import state_fingerprint

        assert state_fingerprint(via_registry) == state_fingerprint(via_ctor)

    def test_coordinator_spec_construction(self):
        from repro.api import L0InfiniteSpec

        spec = L0InfiniteSpec(alpha=1.0, dim=1, seed=21)
        coordinator = DistributedRobustSampler(spec=spec, num_shards=2)
        assert coordinator.spec is spec
        legacy = DistributedRobustSampler(1.0, 1, num_shards=2, seed=21)
        feed(coordinator, 20, seed=3)
        feed(legacy, 20, seed=3)
        from repro.engine import state_fingerprint

        assert state_fingerprint(
            coordinator.merged_sampler()
        ) == state_fingerprint(legacy.merged_sampler())


class TestShardExecutors:
    """Differential executor checks at the distributed layer.

    The full serial/thread/process matrix (empty batches, single shard,
    checkpoint/resume under process workers) lives in
    ``tests/test_executors.py``; these tests pin the two distributed
    facts: process workers reproduce the serial shard states exactly,
    and the coordinator's streaming merge agrees with the barrier merge.
    """

    @staticmethod
    def stream(n=480, seed=51):
        rng = random.Random(seed)
        return [
            (25.0 * rng.randrange(10) + rng.uniform(0, 0.4),)
            for _ in range(n)
        ]

    def test_process_executor_is_fingerprint_identical_to_serial(self):
        from repro.api import PipelineSpec
        from repro.engine import state_fingerprint

        stream = self.stream()
        kwargs = dict(
            alpha=1.0, dim=1, seed=13, num_shards=3, batch_size=32
        )
        serial = BatchPipeline(spec=PipelineSpec(**kwargs))
        serial.extend(stream)
        with BatchPipeline(
            spec=PipelineSpec(**kwargs, executor="process", num_workers=2)
        ) as parallel:
            parallel.extend(stream)
            assert state_fingerprint(parallel) == state_fingerprint(serial)
            assert state_fingerprint(parallel.merge()) == state_fingerprint(
                serial.merge()
            )

    def test_streaming_merge_agrees_with_barrier_merge(self):
        coordinator = DistributedRobustSampler(
            1.0, 1, num_shards=3, seed=5, expected_stream_length=900
        )
        feed(coordinator, 120, seed=5)
        barrier = coordinator.merged_sampler()
        # Arrival order is adversarial (last shard first); the fold is
        # by shard id, so the result must not depend on it.
        arrivals = [
            (shard_id, coordinator.shard(shard_id).to_state())
            for shard_id in (2, 0, 1)
        ]
        streamed = coordinator.streaming_merge(iter(arrivals))
        assert streamed.points_seen == barrier.points_seen
        assert streamed.rate_denominator == barrier.rate_denominator
        assert (
            streamed.num_candidate_groups == barrier.num_candidate_groups
        )
        assert streamed.accept_size == barrier.accept_size
        assert streamed.estimate_f0() == barrier.estimate_f0()
        pooled = sorted(r.count for r in streamed._store.records())
        assert pooled == sorted(r.count for r in barrier._store.records())


class TestDistributedUniformity:
    def test_uniform_over_union_groups(self):
        num_groups = 6
        counts = collections.Counter()
        runs = 300
        for run in range(runs):
            coordinator = DistributedRobustSampler(
                1.0, 1, num_shards=3, seed=run
            )
            feed(coordinator, num_groups, seed=run)
            sample = coordinator.sample(random.Random(run ^ 0x123))
            counts[round(sample.vector[0] // 25.0)] += 1
        dense = [counts.get(g, 0) for g in range(num_groups)]
        _, p_value = chi_square_uniformity(dense)
        assert p_value > 1e-4, dense

    def test_single_shard_equivalent_to_local(self):
        coordinator = DistributedRobustSampler(1.0, 1, num_shards=1, seed=9)
        feed(coordinator, 30, seed=9)
        merged = coordinator.merged_sampler()
        local = coordinator.shard(0)
        assert merged.num_candidate_groups == local.num_candidate_groups
        assert merged.accept_size == local.accept_size
