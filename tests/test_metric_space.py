"""Tests for the LSH generalisation (paper's concluding remark)."""

from __future__ import annotations

import collections
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DimensionMismatchError,
    EmptySampleError,
    ParameterError,
)
from repro.metric_space.lsh import (
    BandedLSH,
    BitSamplingHash,
    MinHash,
    RandomHyperplaneHash,
    design_banding,
)
from repro.metric_space.metrics import (
    angular_distance,
    hamming_distance,
    jaccard_distance,
)
from repro.metric_space.sampler import RobustLSHSampler
from repro.metrics.accuracy import chi_square_uniformity


class TestMetrics:
    def test_angular_basics(self):
        assert angular_distance((1.0, 0.0), (0.0, 1.0)) == pytest.approx(0.5)
        assert angular_distance((1.0, 0.0), (3.0, 0.0)) == pytest.approx(0.0)
        assert angular_distance((1.0, 0.0), (-1.0, 0.0)) == pytest.approx(1.0)

    def test_angular_zero_vector(self):
        with pytest.raises(ParameterError):
            angular_distance((0.0, 0.0), (1.0, 0.0))

    def test_angular_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            angular_distance((1.0,), (1.0, 0.0))

    def test_jaccard_basics(self):
        assert jaccard_distance({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)
        assert jaccard_distance(set(), set()) == 0.0
        assert jaccard_distance({1}, {2}) == 1.0

    def test_hamming_basics(self):
        assert hamming_distance((0, 1, 1, 0), (0, 1, 0, 0)) == 0.25
        assert hamming_distance((), ()) == 0.0

    @given(
        st.sets(st.integers(0, 50), max_size=10),
        st.sets(st.integers(0, 50), max_size=10),
    )
    @settings(max_examples=100)
    def test_jaccard_is_metric_range(self, a, b):
        d = jaccard_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert jaccard_distance(a, a) == 0.0
        assert d == jaccard_distance(b, a)


class TestLSHFamilies:
    def test_hyperplane_collision_tracks_angle(self):
        rng = random.Random(0)
        near_u, near_v = (1.0, 0.0, 0.0), (0.99, 0.05, 0.0)
        far_u, far_v = (1.0, 0.0, 0.0), (-1.0, 0.1, 0.0)
        near_hits = far_hits = 0
        trials = 400
        for _ in range(trials):
            h = RandomHyperplaneHash(3, rng=rng)
            near_hits += h.token(near_u) == h.token(near_v)
            far_hits += h.token(far_u) == h.token(far_v)
        assert near_hits / trials > 0.9
        assert far_hits / trials < 0.15

    def test_minhash_collision_tracks_jaccard(self):
        rng = random.Random(1)
        a, b = frozenset(range(20)), frozenset(range(10, 30))  # J-dist 2/3
        hits = 0
        trials = 600
        for _ in range(trials):
            h = MinHash(rng=rng)
            hits += h.token(a) == h.token(b)
        assert 0.23 < hits / trials < 0.45  # expect ~1/3

    def test_minhash_empty_set(self):
        h = MinHash(rng=random.Random(2))
        assert h.token(frozenset()) == -1

    def test_bit_sampling(self):
        rng = random.Random(3)
        h = BitSamplingHash(4, rng=rng)
        assert h.token((0, 1, 0, 1)) in (0, 1)

    def test_validation(self):
        with pytest.raises(ParameterError):
            RandomHyperplaneHash(0, rng=random.Random(0))
        with pytest.raises(ParameterError):
            BitSamplingHash(0, rng=random.Random(0))


class TestBandedLSH:
    def _make(self, bands=6, rows=2):
        rng = random.Random(5)
        return BandedLSH(
            lambda: MinHash(rng=rng), bands=bands, rows_per_band=rows, seed=2
        )

    def test_key_count(self):
        lsh = self._make()
        assert len(lsh.keys(frozenset({1, 2}))) == 6
        assert lsh.bands == 6
        assert lsh.rows_per_band == 2

    def test_keys_deterministic(self):
        lsh = self._make()
        item = frozenset({1, 2, 3})
        assert lsh.keys(item) == lsh.keys(item)

    def test_identical_items_share_all_keys(self):
        lsh = self._make()
        assert lsh.keys(frozenset({7, 8})) == lsh.keys(frozenset({8, 7}))

    def test_collision_probability_monotone(self):
        lsh = self._make()
        probs = [lsh.collision_probability(d / 10) for d in range(11)]
        assert probs[0] == 1.0
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_collision_probability_validation(self):
        with pytest.raises(ParameterError):
            self._make().collision_probability(1.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            BandedLSH(lambda: None, bands=0, rows_per_band=1)

    def test_design_banding(self):
        bands, rows = design_banding(near=0.1, far=0.6)
        rng = random.Random(7)
        lsh = BandedLSH(
            lambda: MinHash(rng=rng), bands=bands, rows_per_band=rows
        )
        assert lsh.collision_probability(0.1) >= 0.9
        assert lsh.collision_probability(0.6) < lsh.collision_probability(0.1)

    def test_design_banding_validation(self):
        with pytest.raises(ParameterError):
            design_banding(near=0.7, far=0.6)


def _mutate(base, rng, universe=5000, flips=1):
    mutated = set(base)
    for _ in range(flips):
        mutated.discard(rng.choice(sorted(mutated)))
        mutated.add(rng.randrange(universe, universe * 2))
    return frozenset(mutated)


class TestRobustLSHSampler:
    def _sampler(self, seed=1, bands=10, rows=3):
        rng = random.Random(seed)
        lsh = BandedLSH(
            lambda: MinHash(rng=rng), bands=bands, rows_per_band=rows, seed=seed
        )
        return RobustLSHSampler(lsh, jaccard_distance, alpha=0.3, seed=seed)

    def test_alpha_validation(self):
        rng = random.Random(0)
        lsh = BandedLSH(lambda: MinHash(rng=rng), bands=2, rows_per_band=1)
        with pytest.raises(ParameterError):
            RobustLSHSampler(lsh, jaccard_distance, alpha=0.0)

    def test_empty_raises(self):
        with pytest.raises(EmptySampleError):
            self._sampler().sample()

    def test_near_duplicates_collapse(self):
        sampler = self._sampler()
        rng = random.Random(2)
        base = frozenset(rng.sample(range(5000), 25))
        sampler.insert(base)
        for _ in range(10):
            sampler.insert(_mutate(base, rng))
        assert sampler.num_candidate_groups == 1

    def test_distinct_sets_tracked_separately(self):
        sampler = self._sampler()
        rng = random.Random(3)
        for _ in range(20):
            sampler.insert(frozenset(rng.sample(range(100_000), 25)))
        assert sampler.num_candidate_groups >= 18  # LSH misses are rare

    def test_estimate_f0(self):
        sampler = self._sampler()
        rng = random.Random(4)
        for _ in range(40):
            base = frozenset(rng.sample(range(100_000), 25))
            sampler.insert(base)
            sampler.insert(_mutate(base, rng))
        estimate = sampler.estimate_f0()
        assert 20 <= estimate <= 80

    def test_uniform_over_groups(self):
        counts = collections.Counter()
        runs = 300
        gen = random.Random(6)
        bases = [frozenset(gen.sample(range(100_000), 25)) for _ in range(6)]
        for run in range(runs):
            sampler = self._sampler(seed=run)
            rng = random.Random(run)
            stream = []
            for g, base in enumerate(bases):
                stream.append((g, base))
                for _ in range(rng.randint(0, 4)):
                    stream.append((g, _mutate(base, rng)))
            rng.shuffle(stream)
            items = {}
            for g, item in stream:
                items[item] = g
                sampler.insert(item)
            counts[items[sampler.sample(random.Random(run ^ 0x77))]] += 1
        dense = [counts.get(g, 0) for g in range(6)]
        _, p_value = chi_square_uniformity(dense)
        assert p_value > 1e-4, dense

    def test_rate_adapts(self):
        sampler = self._sampler(seed=9)
        rng = random.Random(9)
        for _ in range(600):
            sampler.insert(frozenset(rng.sample(range(10**6), 25)))
        assert sampler.rate_denominator > 1
        assert sampler.accept_size <= sampler._policy.threshold()

    def test_member_sampling(self):
        sampler = self._sampler(seed=10)
        rng = random.Random(10)
        base = frozenset(rng.sample(range(5000), 25))
        sampler.insert(base)
        member = sampler.sample_member(random.Random(0))
        assert member == base

    def test_space_words_positive(self):
        sampler = self._sampler(seed=11)
        sampler.insert(frozenset({1, 2, 3}))
        assert sampler.space_words() > 0

    def test_angular_mode(self):
        rng = random.Random(12)
        lsh = BandedLSH(
            lambda: RandomHyperplaneHash(8, rng=rng),
            bands=12,
            rows_per_band=4,
            seed=12,
        )
        sampler = RobustLSHSampler(lsh, angular_distance, alpha=0.05, seed=12)
        base = tuple(rng.gauss(0, 1) for _ in range(8))
        sampler.insert(base)
        jitter = tuple(x + rng.gauss(0, 0.01) for x in base)
        sampler.insert(jitter)
        far = tuple(-x for x in base)
        sampler.insert(far)
        assert sampler.num_candidate_groups == 2
