"""End-to-end integration tests across the library's layers."""

from __future__ import annotations

import collections
import random

import pytest

from repro import (
    KDistinctSampler,
    RobustF0EstimatorIW,
    RobustL0SamplerIW,
    RobustL0SamplerSW,
    SequenceWindow,
)
from repro.baselines.exact import ExactDistinctSampler
from repro.datasets.catalog import make_dataset
from repro.metrics.accuracy import deviation_report


class TestPaperPipeline:
    """The full Section 6 pipeline on a real catalog dataset."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return make_dataset("Seeds", seed=1)

    def test_stream_pass_and_sample(self, dataset):
        points, labels = dataset.shuffled_stream(random.Random(0))
        sampler = RobustL0SamplerIW(
            dataset.alpha,
            dataset.dim,
            seed=0,
            expected_stream_length=dataset.num_points,
        )
        label_of = {}
        for p, label in zip(points, labels):
            label_of[p.index] = label
            sampler.insert(p)
        sample = sampler.sample(random.Random(1))
        assert label_of[sample.index] in set(labels)
        # Space stays far below storing the stream.
        stream_words = dataset.num_points * (dataset.dim + 2)
        assert sampler.peak_space_words < stream_words / 4

    def test_sample_is_group_first_arrival(self, dataset):
        points, labels = dataset.shuffled_stream(random.Random(3))
        sampler = RobustL0SamplerIW(
            dataset.alpha,
            dataset.dim,
            seed=3,
            expected_stream_length=dataset.num_points,
        )
        first_arrival = {}
        for p, label in zip(points, labels):
            first_arrival.setdefault(label, p.index)
            sampler.insert(p)
        label_of = {p.index: label for p, label in zip(points, labels)}
        for _ in range(5):
            sample = sampler.sample(random.Random(7))
            assert sample.index == first_arrival[label_of[sample.index]]

    def test_f0_estimator_on_catalog_data(self, dataset):
        estimator = RobustF0EstimatorIW(
            dataset.alpha, dataset.dim, epsilon=0.3, copies=3, seed=5
        )
        points, _ = dataset.shuffled_stream(random.Random(5))
        for p in points:
            estimator.insert(p)
        estimate = estimator.estimate()
        assert abs(estimate - dataset.num_groups) / dataset.num_groups < 0.5

    def test_exact_baseline_agrees_with_ground_truth(self, dataset):
        points, _ = dataset.shuffled_stream(random.Random(6))
        exact = ExactDistinctSampler(dataset.alpha, dataset.dim, seed=6)
        for p in points:
            exact.insert(p)
        assert exact.num_groups == dataset.num_groups


class TestCrossSamplerConsistency:
    """Different samplers on the same stream must agree on semantics."""

    def _stream(self, seed, num_groups=40):
        rng = random.Random(seed)
        stream = []
        for g in range(num_groups):
            for _ in range(rng.randint(1, 4)):
                stream.append((25.0 * g + rng.uniform(0, 0.5),))
        rng.shuffle(stream)
        return stream

    def test_sw_with_giant_window_matches_iw_semantics(self):
        """A sliding window larger than the stream behaves like the
        infinite window: the sampled group set is the full group set."""
        stream = self._stream(0)
        sw = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(10 * len(stream)), seed=1
        )
        iw = RobustL0SamplerIW(1.0, 1, seed=1)
        for v in stream:
            sw.insert(v)
            iw.insert(v)
        groups_sw = collections.Counter()
        groups_iw = collections.Counter()
        rng = random.Random(2)
        for _ in range(60):
            groups_sw[round(sw.sample(rng).vector[0] // 25.0)] += 1
            groups_iw[round(iw.sample(rng).vector[0] // 25.0)] += 1
        # Both samplers hit many distinct groups across queries.
        assert len(groups_sw) > 5
        assert len(groups_iw) > 5

    def test_ksampler_matches_single_sampler_distribution(self):
        counts = collections.Counter()
        runs = 300
        for run in range(runs):
            ks = KDistinctSampler(
                1.0, 1, k=1, replacement=True, seed=run
            )
            rng = random.Random(run)
            stream = self._stream(run, num_groups=5)
            for v in stream:
                ks.insert(v)
            counts[round(ks.sample(rng)[0].vector[0] // 25.0)] += 1
        report = deviation_report(
            [counts.get(g, 0) for g in range(5)]
        )
        assert report.is_consistent_with_uniform(p_threshold=1e-4)


class TestAdversarialStreams:
    def test_all_points_identical_location(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=0)
        for _ in range(500):
            sampler.insert((5.0, 5.0))
        assert sampler.num_candidate_groups == 1
        assert sampler.sample().vector == (5.0, 5.0)

    def test_points_on_cell_boundaries(self):
        # Points deliberately placed on integer lattice positions stress
        # the grid's floor arithmetic.
        sampler = RobustL0SamplerIW(1.0, 2, seed=1)
        for i in range(10):
            for j in range(10):
                sampler.insert((4.0 * i, 4.0 * j))
        assert sampler.sample(random.Random(0)) is not None

    def test_sorted_then_reversed_stream_same_groups(self):
        values = [(7.0 * g,) for g in range(50)]
        forward = RobustL0SamplerIW(1.0, 1, seed=2)
        backward = RobustL0SamplerIW(1.0, 1, seed=2)
        for v in values:
            forward.insert(v)
        for v in reversed(values):
            backward.insert(v)
        # Same geometry, same hash seed: the accepted group *locations*
        # must coincide even though arrival orders differ.
        fw = {round(p.vector[0]) for p in forward.accepted_representatives()}
        bw = {round(p.vector[0]) for p in backward.accepted_representatives()}
        assert fw == bw

    def test_tiny_alpha_every_point_distinct(self):
        sampler = RobustL0SamplerIW(1e-6, 1, seed=3, expected_stream_length=200)
        for i in range(200):
            sampler.insert((float(i),))
        assert sampler.estimate_f0() > 50

    def test_huge_alpha_single_group(self):
        sampler = RobustL0SamplerIW(1e6, 1, seed=4)
        for i in range(200):
            sampler.insert((float(i),))
        assert sampler.num_candidate_groups == 1
