"""State-backend contract and crash-safety suite (``repro.backends``).

Every backend flavour runs the same contract matrix: versioning,
atomic compare-and-swap (nothing applied on conflict), O(1) count,
operation counters.  The file backend additionally runs the durability
gauntlet - fault injection between temp-write and rename, a
``SIGKILL``\\ ed writer subprocess, cross-process CAS races, torn-read
hunting, stale-temp sweeping and legacy-layout upgrades - because its
crash-safety discipline (fsync + unique temp + atomic rename +
directory fsync + flock'd CAS) is exactly what the ISSUE's spill-path
bugfix is about.

The redis flavour joins the matrix when ``REPRO_REDIS_URL`` points at
a reachable server (CI runs one as a service container); without the
``redis`` package or a server it must *skip cleanly*, never error -
that graceful degradation is itself asserted below.
"""

from __future__ import annotations

import hashlib
import os
import signal
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.backends import (
    BACKEND_NAMES,
    HAVE_REDIS,
    FileBackend,
    MemoryBackend,
    RedisBackend,
    StateBackend,
    atomic_write_bytes,
    make_backend,
)
from repro.backends.file import _HEADER, _MAGIC
from repro.errors import (
    BackendError,
    BackendUnavailableError,
    CASConflictError,
    ParameterError,
)

SRC = Path(__file__).resolve().parent.parent / "src"


def _subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _redis_backend(namespace: str) -> RedisBackend:
    """A namespaced redis backend, or skip (cleanly) when unavailable."""
    url = os.environ.get("REPRO_REDIS_URL")
    if not url:
        pytest.skip("REPRO_REDIS_URL not set; no redis server to test")
    if not HAVE_REDIS:
        pytest.skip("redis package not installed (the [redis] extra)")
    backend = RedisBackend(url, namespace=namespace)
    try:
        backend.ping()
    except Exception:
        pytest.skip("redis server unreachable")
    backend.clear()
    return backend


@pytest.fixture(params=list(BACKEND_NAMES))
def backend(request, tmp_path):
    """The contract matrix: every flavour faces the same assertions."""
    if request.param == "memory":
        yield MemoryBackend()
        return
    if request.param == "file":
        instance = FileBackend(str(tmp_path / "store"))
        yield instance
        instance.close()
        return
    instance = _redis_backend(f"repro-test:{request.node.name}")
    yield instance
    instance.clear()
    instance.close()


class TestContract:
    """The StateBackend contract, identical across flavours."""

    def test_absent_key(self, backend):
        assert backend.get("missing") is None
        assert backend.get_versioned("missing") is None
        assert "missing" not in backend
        assert backend.count() == 0
        assert list(backend.keys()) == []

    def test_put_get_roundtrip_and_versions(self, backend):
        assert backend.put("k", b"one") == 1
        assert backend.put("k", b"two") == 2
        assert backend.get("k") == b"two"
        assert backend.get_versioned("k") == (b"two", 2)
        assert "k" in backend
        assert len(backend) == 1

    def test_keys_sorted_and_count(self, backend):
        for name in ("beta", "alpha", "gamma"):
            backend.put(name, name.encode())
        assert list(backend.keys()) == ["alpha", "beta", "gamma"]
        assert backend.count() == 3

    def test_delete_resets_version(self, backend):
        backend.put("k", b"data")
        assert backend.delete("k") is True
        assert backend.delete("k") is False
        assert backend.get_versioned("k") is None
        assert backend.count() == 0
        # A fresh write restarts the version history at 1.
        assert backend.put("k", b"again") == 1

    def test_binary_payloads_and_odd_keys(self, backend):
        payload = bytes(range(256)) * 3
        key = "tenant/key:with spacesé"
        backend.put(key, payload)
        assert backend.get(key) == payload
        assert list(backend.keys()) == [key]

    def test_put_many_matches_sequential_puts(self, backend):
        backend.put("existing", b"old")
        versions = backend.put_many(
            [("existing", b"new"), ("fresh", b"one"), ("other", b"x")]
        )
        assert versions == {"existing": 2, "fresh": 1, "other": 1}
        assert backend.get_versioned("existing") == (b"new", 2)
        assert backend.get_versioned("fresh") == (b"one", 1)
        assert backend.get_versioned("other") == (b"x", 1)

    def test_put_many_repeated_key_reports_last_version(self, backend):
        versions = backend.put_many([("k", b"a"), ("k", b"b")])
        assert versions == {"k": 2}
        assert backend.get_versioned("k") == (b"b", 2)

    def test_put_many_empty_batch(self, backend):
        assert backend.put_many([]) == {}
        assert backend.count() == 0

    def test_put_many_counts_as_puts_in_stats(self, backend):
        backend.put_many([("a", b"1"), ("b", b"2"), ("a", b"3")])
        assert backend.stats()["puts"] == 3
        # put_many feeds the same version chain as put: CAS at the
        # reported version must succeed.
        backend.compare_and_swap("a", 2, b"4")

    def test_cas_create_only(self, backend):
        assert backend.compare_and_swap("k", 0, b"mine") == 1
        with pytest.raises(CASConflictError) as excinfo:
            backend.compare_and_swap("k", 0, b"thief")
        assert excinfo.value.expected_version == 0
        assert excinfo.value.actual_version == 1
        assert backend.get("k") == b"mine"  # nothing applied

    def test_cas_chain_and_stale_writer(self, backend):
        version = backend.compare_and_swap("k", 0, b"v1")
        version = backend.compare_and_swap("k", version, b"v2")
        assert version == 2
        # A writer still holding version 1 must lose, wholly.
        with pytest.raises(CASConflictError) as excinfo:
            backend.compare_and_swap("k", 1, b"stale")
        assert excinfo.value.actual_version == 2
        assert backend.get_versioned("k") == (b"v2", 2)

    def test_cas_on_absent_key_with_nonzero_expected(self, backend):
        with pytest.raises(CASConflictError) as excinfo:
            backend.compare_and_swap("k", 3, b"data")
        assert excinfo.value.actual_version == 0
        assert backend.get("k") is None

    def test_cas_negative_expected_rejected(self, backend):
        with pytest.raises(ParameterError):
            backend.compare_and_swap("k", -1, b"data")

    def test_stats_counters(self, backend):
        backend.put("k", b"one")
        backend.get("k")
        backend.get_versioned("k")
        backend.compare_and_swap("k", 1, b"two")
        with pytest.raises(CASConflictError):
            backend.compare_and_swap("k", 1, b"stale")
        backend.delete("k")
        stats = backend.stats()
        assert stats["puts"] == 1
        assert stats["gets"] == 2
        assert stats["cas_attempts"] == 2
        assert stats["cas_conflicts"] == 1
        assert stats["deletes"] == 1

    def test_threaded_cas_hammer_loses_no_update(self, backend):
        """N threads CAS-retrying on one key: every successful commit
        got a unique version; the final version counts the successes."""
        successes = []
        lock = threading.Lock()

        def writer(worker: int) -> None:
            for i in range(20):
                while True:
                    found = backend.get_versioned("counter")
                    expected = 0 if found is None else found[1]
                    try:
                        version = backend.compare_and_swap(
                            "counter", expected, f"{worker}:{i}".encode()
                        )
                    except CASConflictError:
                        continue
                    with lock:
                        successes.append(version)
                    break

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(successes) == list(range(1, 81))
        assert backend.get_versioned("counter")[1] == 80


class TestMakeBackend:
    def test_flavours(self, tmp_path):
        assert isinstance(make_backend("memory"), MemoryBackend)
        file_backend = make_backend("file", path=str(tmp_path / "s"))
        assert isinstance(file_backend, FileBackend)
        file_backend.close()

    def test_option_validation(self, tmp_path):
        with pytest.raises(ParameterError):
            make_backend("memory", path=str(tmp_path))
        with pytest.raises(ParameterError):
            make_backend("memory", url="redis://localhost")
        with pytest.raises(ParameterError):
            make_backend("file")
        with pytest.raises(ParameterError):
            make_backend("file", path=str(tmp_path), url="redis://x")
        with pytest.raises(ParameterError):
            make_backend("redis")
        with pytest.raises(ParameterError):
            make_backend("redis", url="redis://x", path=str(tmp_path))
        with pytest.raises(ParameterError):
            make_backend("sqlite")

    def test_redis_without_package_degrades_gracefully(self):
        """Without the redis package the flavour must raise the typed
        unavailability error (pointing at the extra), not ImportError."""
        if HAVE_REDIS:
            pytest.skip("redis package installed; the error path is moot")
        with pytest.raises(BackendUnavailableError, match=r"\[redis\]"):
            make_backend("redis", url="redis://localhost:6379/0")


class TestAtomicWriteBytes:
    def test_writes_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "blob"
        atomic_write_bytes(str(path), b"payload")
        assert path.read_bytes() == b"payload"
        assert [p.name for p in tmp_path.iterdir()] == ["blob"]

    def test_failed_replace_preserves_old_and_cleans_temp(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "blob"
        atomic_write_bytes(str(path), b"old")

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(str(path), b"new")
        monkeypatch.undo()
        assert path.read_bytes() == b"old"
        assert [p.name for p in tmp_path.iterdir()] == ["blob"]

    def test_unique_temp_names_per_call(self, tmp_path, monkeypatch):
        """Two in-flight writes of one path never share a temp file."""
        seen = []
        real_replace = os.replace

        def recording_replace(src, dst):
            seen.append(src)
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", recording_replace)
        path = str(tmp_path / "blob")
        atomic_write_bytes(path, b"a")
        atomic_write_bytes(path, b"b")
        assert len(set(seen)) == 2
        assert all(f".tmp.{os.getpid()}." in name for name in seen)


class TestFileBackendDurability:
    """The spill-path bugfix gauntlet (file flavour only)."""

    def test_count_and_keys_never_enumerate_after_init(
        self, tmp_path, monkeypatch
    ):
        """The /metrics scrape path reads count() per request: pin that
        it is served from the maintained counter, not a directory walk."""
        backend = FileBackend(str(tmp_path / "store"))
        backend.put("a", b"1")
        backend.put("b", b"2")

        def forbidden_listdir(path):
            raise AssertionError("count()/keys() enumerated the directory")

        monkeypatch.setattr(os, "listdir", forbidden_listdir)
        assert backend.count() == 2
        assert list(backend.keys()) == ["a", "b"]
        backend.delete("a")
        assert backend.count() == 1
        backend.close()

    def test_failed_write_leaves_committed_state_intact(
        self, tmp_path, monkeypatch
    ):
        """Fault between temp-write and rename: the put fails, the
        previous version stays fully readable, no temp debris."""
        backend = FileBackend(str(tmp_path / "store"))
        backend.put("k", b"committed")
        monkeypatch.setattr(
            os, "replace", lambda src, dst: (_ for _ in ()).throw(
                OSError("injected crash before rename")
            )
        )
        with pytest.raises(OSError):
            backend.put("k", b"doomed")
        monkeypatch.undo()
        assert backend.get_versioned("k") == (b"committed", 1)
        names = os.listdir(tmp_path / "store")
        assert not [n for n in names if ".tmp." in n]
        # The failed put consumed no version: the next write is v2.
        assert backend.put("k", b"next") == 2
        backend.close()

    def test_put_many_fsyncs_the_directory_once(self, tmp_path, monkeypatch):
        """Group commit: a batch of N puts pays ONE directory fsync, not
        N - the amortisation the remote queue's chunk batching relies on.
        Every value file is still individually fsynced and atomically
        renamed, so a crash can lose a batch suffix but never tear a
        value."""
        import repro.backends.file as file_module

        backend = FileBackend(str(tmp_path / "store"))
        real = file_module._fsync_directory
        calls = []

        def counting(directory):
            calls.append(directory)
            real(directory)

        monkeypatch.setattr(file_module, "_fsync_directory", counting)
        backend.put_many([(f"k{i}", bytes([i])) for i in range(8)])
        assert len(calls) == 1
        monkeypatch.undo()
        backend.close()
        # The batch is durable: a fresh instance reads every entry.
        reopened = FileBackend(str(tmp_path / "store"))
        assert reopened.count() == 8
        assert reopened.get_versioned("k7") == (bytes([7]), 1)
        reopened.close()

    def test_stale_temp_files_swept_on_init(self, tmp_path):
        dead = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        dead_pid = int(dead.stdout)
        store = tmp_path / "store"
        store.mkdir()
        key_file = "6b" + ".blob"  # hex("k")
        (store / key_file).write_bytes(
            _HEADER.pack(_MAGIC, 1) + b"good"
        )
        (store / f"{key_file}.tmp.{dead_pid}.0").write_bytes(b"half a wri")
        (store / f"{key_file}.tmp.bogus").write_bytes(b"")  # debris
        backend = FileBackend(str(store))
        names = os.listdir(store)
        assert not [n for n in names if ".tmp." in n]
        assert backend.get_versioned("k") == (b"good", 1)
        backend.close()

    def test_sweep_spares_a_live_writers_temp(self, tmp_path):
        """Opening the directory while another process is mid-write
        must not delete its in-flight temp file."""
        store = tmp_path / "store"
        store.mkdir()
        live = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        name = f"6b.blob.tmp.{os.getpid()}.7"
        (store / name).write_bytes(b"in flight")
        other = f"6b.blob.tmp.{int(live.stdout)}.0"
        (store / other).write_bytes(b"dead")
        backend = FileBackend(str(store))
        survivors = [n for n in os.listdir(store) if ".tmp." in n]
        # Another handle in this (live) process keeps its temp...
        assert survivors == [name]
        backend.close()

    def test_corrupt_header_raises_backend_error(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "6b.blob").write_bytes(b"XX")
        backend = FileBackend(str(store))
        with pytest.raises(BackendError, match="corrupt header"):
            backend.get("k")
        backend.close()

    def test_legacy_json_layout_read_as_version_one_and_upgraded(
        self, tmp_path
    ):
        """Pre-backend spill directories (bare ``<hex>.json`` payloads)
        stay readable as version 1 and upgrade on the next write."""
        store = tmp_path / "store"
        store.mkdir()
        key_hex = "tenant-1".encode("utf-8").hex()
        (store / f"{key_hex}.json").write_bytes(b'{"legacy": true}')
        backend = FileBackend(str(store))
        assert backend.count() == 1
        assert backend.get_versioned("tenant-1") == (b'{"legacy": true}', 1)
        # CAS against the synthesised version works, and the write
        # migrates the key to the versioned blob layout.
        assert backend.compare_and_swap("tenant-1", 1, b"new") == 2
        assert not (store / f"{key_hex}.json").exists()
        assert (store / f"{key_hex}.blob").exists()
        backend.close()

    def test_reopen_preserves_versions(self, tmp_path):
        store = str(tmp_path / "store")
        first = FileBackend(store)
        first.put("k", b"one")
        first.put("k", b"two")
        first.close()
        second = FileBackend(store)
        assert second.get_versioned("k") == (b"two", 2)
        assert second.count() == 1
        # CAS history continues across handles.
        assert second.compare_and_swap("k", 2, b"three") == 3
        second.close()

    def test_sigkilled_writer_never_leaves_torn_state(self, tmp_path):
        """kill -9 a subprocess mid-write-loop: whatever survives on
        disk must be one complete self-consistent payload (checksum
        embedded in the data), and a fresh handle sweeps the debris."""
        store = tmp_path / "store"
        script = (
            "import hashlib, sys\n"
            "from repro.backends import FileBackend\n"
            "backend = FileBackend(sys.argv[1])\n"
            "print('ready', flush=True)\n"
            "i = 0\n"
            "while True:\n"
            "    body = (str(i) * 200).encode()\n"
            "    digest = hashlib.sha256(body).hexdigest().encode()\n"
            "    backend.put('victim', digest + b':' + body)\n"
            "    i += 1\n"
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script, str(store)],
            stdout=subprocess.PIPE,
            text=True,
            env=_subprocess_env(),
        )
        try:
            assert process.stdout.readline().strip() == "ready"
            time.sleep(0.2)  # let some writes land
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        backend = FileBackend(str(store))
        found = backend.get_versioned("victim")
        assert found is not None, "no write committed before the kill"
        data, version = found
        digest, body = data.split(b":", 1)
        assert hashlib.sha256(body).hexdigest().encode() == digest
        assert version >= 1
        assert not [n for n in os.listdir(store) if ".tmp." in n]
        backend.close()

    def test_cross_process_create_race_elects_one_owner(self, tmp_path):
        """Two processes CAS-create the same key: exactly one wins."""
        store = str(tmp_path / "store")
        script = (
            "import sys\n"
            "from repro.backends import FileBackend\n"
            "from repro.errors import CASConflictError\n"
            "backend = FileBackend(sys.argv[1])\n"
            "try:\n"
            "    backend.compare_and_swap('owner', 0, sys.argv[2].encode())\n"
            "    print('won')\n"
            "except CASConflictError:\n"
            "    print('lost')\n"
        )
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", script, store, name],
                stdout=subprocess.PIPE,
                text=True,
                env=_subprocess_env(),
            )
            for name in ("first", "second")
        ]
        outcomes = sorted(
            process.communicate(timeout=60)[0].strip()
            for process in processes
        )
        assert all(process.returncode == 0 for process in processes)
        assert outcomes == ["lost", "won"]
        backend = FileBackend(store)
        data, version = backend.get_versioned("owner")
        assert version == 1
        assert data in (b"first", b"second")
        backend.close()

    def test_cross_process_cas_hammer_loses_no_update(self, tmp_path):
        """Two processes CAS-retry 25 commits each on one key: the
        final version is exactly 50 - no update lost, none torn."""
        store = str(tmp_path / "store")
        script = (
            "import sys\n"
            "from repro.backends import FileBackend\n"
            "from repro.errors import CASConflictError\n"
            "backend = FileBackend(sys.argv[1])\n"
            "done = 0\n"
            "while done < 25:\n"
            "    found = backend.get_versioned('counter')\n"
            "    expected = 0 if found is None else found[1]\n"
            "    payload = (sys.argv[2] * 50).encode()\n"
            "    try:\n"
            "        backend.compare_and_swap('counter', expected, payload)\n"
            "    except CASConflictError:\n"
            "        continue\n"
            "    done += 1\n"
            "print('done')\n"
        )
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", script, store, marker],
                stdout=subprocess.PIPE,
                text=True,
                env=_subprocess_env(),
            )
            for marker in ("a", "b")
        ]
        for process in processes:
            out, _ = process.communicate(timeout=120)
            assert process.returncode == 0
            assert out.strip() == "done"
        backend = FileBackend(store)
        data, version = backend.get_versioned("counter")
        assert version == 50
        assert data in (b"a" * 50, b"b" * 50)  # complete, never mixed
        backend.close()

    def test_reader_never_sees_torn_payload(self, tmp_path):
        """A reader polling during a write storm sees only complete
        payloads: uniformly 'A' bytes or uniformly 'B' bytes."""
        backend = FileBackend(str(tmp_path / "store"))
        payloads = (b"A" * 8192, b"B" * 8192)
        backend.put("hot", payloads[0])
        stop = threading.Event()
        torn: list[bytes] = []

        def reader() -> None:
            while not stop.is_set():
                data = backend.get("hot")
                if data not in payloads:
                    torn.append(data)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        for i in range(200):
            backend.put("hot", payloads[i % 2])
        stop.set()
        thread.join(timeout=30)
        assert torn == []
        assert backend.get_versioned("hot")[1] == 201
        backend.close()

    def test_blob_header_is_the_version(self, tmp_path):
        """Version and payload travel in one file: what the header
        says is what get_versioned reports (no sidecar to diverge)."""
        backend = FileBackend(str(tmp_path / "store"))
        backend.put("k", b"data")
        backend.put("k", b"data2")
        raw = (tmp_path / "store" / ("6b" + ".blob")).read_bytes()
        magic, version = struct.unpack_from(">4sQ", raw)
        assert magic == _MAGIC
        assert version == 2
        assert raw[_HEADER.size:] == b"data2"
        backend.close()


class TestBackendIsStateBackend:
    def test_every_flavour_subclasses_the_contract(self, backend):
        assert isinstance(backend, StateBackend)
