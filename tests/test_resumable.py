"""Crash-safe resumable pipelines (``repro.engine.resumable``).

The acceptance gate of the StateBackend PR: a ``run_resumable`` job
killed mid-stream and rerun with the same arguments must finish with a
``state_fingerprint`` identical to an uninterrupted run - for the
memory and file backends always, for redis when ``REPRO_REDIS_URL``
points at a server - and two workers racing on one checkpoint key must
never produce torn or lost shard state (exactly one create-only CAS
winner; a stale writer's commit raises with nothing applied).

Kills are injected two ways: an exploding stream (the in-process
simulation of dying mid-ingest, after an arbitrary number of committed
checkpoints) and a real ``SIGKILL`` of a subprocess driving the CLI's
``pipeline --backend`` path against a file backend.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import PipelineSpec
from repro.backends import FileBackend, MemoryBackend
from repro.engine import BatchPipeline, run_resumable, state_fingerprint
from repro.engine.resumable import DEFAULT_CHECKPOINT_EVERY  # noqa: F401
from repro.errors import CASConflictError, CheckpointError, ParameterError

SRC = Path(__file__).resolve().parent.parent / "src"

BATCH = 16
TOTAL = 23 * BATCH + 7  # an uneven tail: the last chunk is partial


def stream(n=TOTAL, seed=41, groups=9):
    rng = random.Random(seed)
    return [
        (25.0 * rng.randrange(groups) + rng.uniform(0, 0.4),)
        for _ in range(n)
    ]


def spec(**overrides) -> PipelineSpec:
    base = dict(
        alpha=1.0, dim=1, seed=13, num_shards=3, batch_size=BATCH
    )
    base.update(overrides)
    return PipelineSpec(**base)


class ExplodingStream:
    """A stream that dies after yielding ``fuse`` points (mid-ingest)."""

    class Boom(RuntimeError):
        pass

    def __init__(self, points, fuse: int) -> None:
        self._points = points
        self._fuse = fuse

    def __iter__(self):
        for i, point in enumerate(self._points):
            if i >= self._fuse:
                raise self.Boom(f"killed after {i} points")
            yield point


def make_backend_for(flavour: str, tmp_path, name: str):
    if flavour == "memory":
        return MemoryBackend()
    if flavour == "file":
        return FileBackend(str(tmp_path / "backend"))
    from repro.backends import HAVE_REDIS, RedisBackend

    url = os.environ.get("REPRO_REDIS_URL")
    if not url:
        pytest.skip("REPRO_REDIS_URL not set; no redis server to test")
    if not HAVE_REDIS:
        pytest.skip("redis package not installed (the [redis] extra)")
    backend = RedisBackend(url, namespace=f"repro-test:{name}")
    try:
        backend.ping()
    except Exception:
        pytest.skip("redis server unreachable")
    backend.clear()
    return backend


@pytest.fixture(params=["memory", "file", "redis"])
def backend(request, tmp_path):
    instance = make_backend_for(
        request.param, tmp_path, request.node.name
    )
    yield instance
    if request.param == "redis":
        instance.clear()
    instance.close()


class TestUninterrupted:
    def test_matches_a_plain_run(self, backend):
        """Checkpointing is observationally free: same final state as
        feeding the pipeline directly."""
        plain = BatchPipeline(spec=spec())
        plain.extend(stream())
        plain.close()
        resumed = run_resumable(
            spec(), stream(), backend, "job", checkpoint_every=3
        )
        assert state_fingerprint(resumed) == state_fingerprint(plain)
        assert resumed.points_seen == TOTAL

    def test_rerun_is_a_noop_resume(self, backend):
        first = run_resumable(
            spec(), stream(), backend, "job", checkpoint_every=3
        )
        version = backend.get_versioned("job")[1]
        again = run_resumable(spec(), stream(), backend, "job")
        assert state_fingerprint(again) == state_fingerprint(first)
        # Nothing new to ingest, nothing new committed.
        assert backend.get_versioned("job")[1] == version

    def test_empty_stream_commits_a_fresh_checkpoint(self, backend):
        pipeline = run_resumable(spec(), [], backend, "job")
        assert pipeline.points_seen == 0
        assert backend.get_versioned("job") is not None

    def test_checkpoint_every_validated(self, backend):
        with pytest.raises(ParameterError):
            run_resumable(spec(), [], backend, "job", checkpoint_every=0)


class TestKilledAndResumed:
    @pytest.mark.parametrize("fuse", [BATCH * 5 + 3, BATCH * 12, TOTAL - 1])
    def test_resume_is_fingerprint_identical(self, backend, fuse):
        """THE acceptance gate: kill at an arbitrary point, rerun the
        same call, land fingerprint-identical to the uninterrupted run."""
        uninterrupted = BatchPipeline(spec=spec())
        uninterrupted.extend(stream())
        uninterrupted.close()
        with pytest.raises(ExplodingStream.Boom):
            run_resumable(
                spec(),
                ExplodingStream(stream(), fuse),
                backend,
                "job",
                checkpoint_every=2,
            )
        checkpointed, version = BatchPipeline.resume_from(backend, "job")
        assert checkpointed is not None
        assert version >= 1
        # Committed checkpoints are chunk-aligned by construction.
        assert checkpointed.points_seen % BATCH == 0
        assert checkpointed.points_seen <= fuse
        resumed = run_resumable(
            spec(), stream(), backend, "job", checkpoint_every=2
        )
        assert resumed.points_seen == TOTAL
        assert state_fingerprint(resumed) == state_fingerprint(
            uninterrupted
        )
        assert resumed.estimate_f0() == uninterrupted.estimate_f0()

    def test_double_kill_then_resume(self, backend):
        """Two crashes at different depths, then a clean finish."""
        uninterrupted = BatchPipeline(spec=spec())
        uninterrupted.extend(stream())
        uninterrupted.close()
        for fuse in (BATCH * 4 + 1, BATCH * 15 + 9):
            with pytest.raises(ExplodingStream.Boom):
                run_resumable(
                    spec(),
                    ExplodingStream(stream(), fuse),
                    backend,
                    "job",
                    checkpoint_every=1,
                )
        resumed = run_resumable(
            spec(), stream(), backend, "job", checkpoint_every=1
        )
        assert state_fingerprint(resumed) == state_fingerprint(
            uninterrupted
        )

    def test_parallel_executor_checkpoints_are_synchronised(
        self, backend
    ):
        """A thread-executor run checkpoints synchronised (drained)
        states: killing it and resuming still lands fingerprint-equal
        to an uninterrupted serial run."""
        threaded = spec(executor="thread", num_workers=2)
        serial_run = BatchPipeline(spec=spec())
        serial_run.extend(stream())
        serial_run.close()
        with pytest.raises(ExplodingStream.Boom):
            run_resumable(
                threaded,
                ExplodingStream(stream(), BATCH * 9 + 5),
                backend,
                "job",
                checkpoint_every=2,
            )
        resumed = run_resumable(
            threaded, stream(), backend, "job", checkpoint_every=2
        )
        assert state_fingerprint(resumed) == state_fingerprint(serial_run)


class TestConcurrentWriters:
    def test_create_race_elects_one_owner(self, backend):
        """Two fresh workers on one key: the loser's create-only CAS
        raises before it ingests anything."""
        run_resumable(spec(), stream(), backend, "job")
        # A second fresh worker arriving later resumes instead of
        # racing - the create path only runs when the key is absent -
        # so simulate the true race: the key appears between the
        # loser's resume_from and its create CAS.
        pipeline = BatchPipeline(spec=spec())
        with pytest.raises(CASConflictError):
            pipeline.checkpoint_to(backend, "job", cas_version=0)
        pipeline.close()

    def test_stale_writer_loses_wholly(self, backend):
        """A writer fenced on an old version cannot commit anything:
        the winner's checkpoint survives byte-for-byte."""
        run_resumable(spec(), stream(), backend, "job", checkpoint_every=4)
        winner_blob = backend.get_versioned("job")
        stale = BatchPipeline(spec=spec())
        stale.extend(stream(n=BATCH * 2, seed=99))
        with pytest.raises(CASConflictError):
            stale.checkpoint_to(backend, "job", cas_version=1)
        stale.close()
        assert backend.get_versioned("job") == winner_blob

    def test_interleaved_checkpointers_never_tear(self, backend):
        """Two live runs ping-ponging commits on one key: every commit
        either lands wholly (and bumps the version by one) or raises
        wholly; the final blob is always one run's complete state."""
        first = BatchPipeline(spec=spec())
        second = BatchPipeline(spec=spec(seed=77))
        version_first = first.checkpoint_to(backend, "job", cas_version=0)
        first.extend(stream(n=BATCH * 3))
        version_first = first.checkpoint_to(
            backend, "job", cas_version=version_first
        )
        # The second run fences on what it (never) saw: conflict.
        with pytest.raises(CASConflictError):
            second.checkpoint_to(backend, "job", cas_version=0)
        # It rebases on the live version and wins the next round.
        live_version = backend.get_versioned("job")[1]
        second.checkpoint_to(backend, "job", cas_version=live_version)
        restored, _ = BatchPipeline.resume_from(backend, "job")
        assert state_fingerprint(restored) == state_fingerprint(second)
        # ... which in turn fences out the first run's next commit.
        with pytest.raises(CASConflictError):
            first.checkpoint_to(backend, "job", cas_version=version_first)
        first.close()
        second.close()


class TestGuards:
    def test_key_collision_between_jobs_is_refused(self, backend):
        run_resumable(spec(), stream(), backend, "job")
        with pytest.raises(CheckpointError, match="different"):
            run_resumable(spec(seed=99), stream(), backend, "job")

    def test_non_pipeline_checkpoint_under_key_is_refused(self, backend):
        from repro.core.infinite_window import RobustL0SamplerIW
        from repro.persist import store_summary

        sampler = RobustL0SamplerIW(1.0, 1, seed=3)
        store_summary(backend, "job", sampler)
        with pytest.raises(CheckpointError, match="batch-pipeline"):
            run_resumable(spec(), stream(), backend, "job")

    def test_shrunken_stream_is_refused(self, backend):
        """Resuming against a stream shorter than what the checkpoint
        consumed means the streams differ - refuse, don't corrupt."""
        run_resumable(spec(), stream(), backend, "job")
        with pytest.raises(CheckpointError, match="restartable"):
            run_resumable(spec(), stream(n=BATCH), backend, "job")


class TestSigkilledCliRun:
    """A real kill -9 of the CLI's ``pipeline --backend file`` path."""

    def _run_cli(self, data: str, backend_dir: str, *, env, kill_after=None):
        command = [
            sys.executable, "-m", "repro.cli", "pipeline",
            "--alpha", "0.5", "--seed", "7", "--batch-size", "8",
            "--shards", "3", "--backend", "file",
            "--backend-path", backend_dir,
            "--checkpoint-every", "1", data,
        ]
        if kill_after is None:
            return subprocess.run(
                command, capture_output=True, text=True, timeout=300,
                env=env,
            )
        process = subprocess.Popen(
            command, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=env,
        )
        time.sleep(kill_after)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
        return process

    def test_kill_minus_nine_then_rerun_matches_clean_run(self, tmp_path):
        data = tmp_path / "points.csv"
        with open(data, "w") as handle:
            for i in range(4000):
                handle.write(f"{(i % 23) * 10.0},{(i % 17) * 10.0}\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        clean = self._run_cli(
            str(data), str(tmp_path / "clean-backend"), env=env
        )
        assert clean.returncode == 0, clean.stderr
        backend_dir = str(tmp_path / "killed-backend")
        self._run_cli(str(data), backend_dir, env=env, kill_after=0.4)
        # Whether or not the kill landed mid-run, the rerun must finish
        # from whatever was committed and print the clean run's answer.
        rerun = self._run_cli(str(data), backend_dir, env=env)
        assert rerun.returncode == 0, rerun.stderr
        assert rerun.stdout == clean.stdout
