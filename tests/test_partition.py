"""Tests for repro.partition: natural, greedy, minimum-cardinality."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import well_separated_clusters
from repro.partition.greedy import greedy_partition
from repro.partition.min_cardinality import (
    min_cardinality_partition,
    min_cardinality_size,
)
from repro.partition.natural import (
    connected_components_within,
    is_well_separated,
    natural_partition,
    separation_gap,
)

POINTS_1D = st.lists(
    st.floats(min_value=0, max_value=50, allow_nan=False),
    min_size=1,
    max_size=10,
)


class TestNaturalPartition:
    def test_simple_components(self):
        parts = connected_components_within([(0.0,), (0.1,), (5.0,)], 0.5)
        assert parts == [[0, 1], [2]]

    def test_chain_transitivity(self):
        # 0 - 0.4 - 0.8: 0 and 0.8 are linked through 0.4.
        parts = connected_components_within([(0.0,), (0.4,), (0.8,)], 0.5)
        assert parts == [[0, 1, 2]]

    def test_order_of_first_arrival(self):
        parts = connected_components_within([(5.0,), (0.0,), (5.1,)], 0.5)
        assert parts[0] == [0, 2]

    def test_empty(self):
        assert connected_components_within([], 1.0) == []

    def test_separation_gap(self):
        max_intra, min_inter = separation_gap([(0.0,), (0.1,), (5.0,)], 0.5)
        assert max_intra == pytest.approx(0.1)
        assert min_inter == pytest.approx(4.9)

    def test_single_group_gap_infinite(self):
        _, min_inter = separation_gap([(0.0,), (0.1,)], 0.5)
        assert min_inter == float("inf")

    def test_is_well_separated(self):
        assert is_well_separated([(0.0,), (0.1,), (5.0,)], 0.5)
        assert not is_well_separated([(0.0,), (0.4,), (0.9,)], 0.5)

    def test_generator_produces_well_separated(self):
        points, labels, alpha = well_separated_clusters(
            5, 4, 3, rng=random.Random(1)
        )
        assert is_well_separated(points, alpha)
        parts = natural_partition(points, alpha)
        assert len(parts) == 5
        # Natural partition must match the generator's labels.
        for members in parts:
            assert len({labels[i] for i in members}) == 1


class TestGreedyPartition:
    def test_arrival_order(self):
        groups = greedy_partition([(0.0,), (0.9,), (1.8,)], 1.0)
        assert groups == [[0, 1], [2]]

    def test_explicit_order(self):
        groups = greedy_partition([(0.0,), (0.9,), (1.8,)], 1.0, order=[1, 0, 2])
        # Seeding at 0.9 absorbs both neighbours.
        assert groups == [[1, 0, 2]]

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            greedy_partition([(0.0,)], 1.0, order=[1])

    def test_covers_all_points(self):
        rng = random.Random(2)
        points = [(rng.uniform(0, 10),) for _ in range(40)]
        groups = greedy_partition(points, 1.0)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(40))

    def test_group_radius_bound(self):
        rng = random.Random(3)
        points = [(rng.uniform(0, 5), rng.uniform(0, 5)) for _ in range(30)]
        for group in greedy_partition(points, 1.0):
            seed_point = points[group[0]]
            for i in group:
                dist_sq = sum(
                    (a - b) ** 2 for a, b in zip(seed_point, points[i])
                )
                assert dist_sq <= 1.0 + 1e-9


class TestMinCardinality:
    def test_exact_small(self):
        assert min_cardinality_size([(0.0,), (0.6,), (1.2,)], 1.0) == 2

    def test_partition_valid(self):
        points = [(0.0,), (0.5,), (1.0,), (3.0,)]
        partition = min_cardinality_partition(points, 1.0)
        flat = sorted(i for g in partition for i in g)
        assert flat == list(range(4))
        for group in partition:
            for i in group:
                for j in group:
                    assert abs(points[i][0] - points[j][0]) <= 1.0 + 1e-9

    def test_empty(self):
        assert min_cardinality_partition([], 1.0) == []

    def test_well_separated_equals_natural(self):
        points, _, alpha = well_separated_clusters(4, 3, 2, rng=random.Random(5))
        natural = natural_partition(points, alpha)
        assert min_cardinality_size(points, alpha) == len(natural)

    @given(POINTS_1D)
    @settings(max_examples=60, deadline=None)
    def test_greedy_at_most_opt_property(self, xs):
        """Lemma 3.3 (first half): n_greedy <= n_opt.

        Greedy balls have radius alpha (diameter up to 2*alpha) while
        optimal groups have diameter alpha, so greedy can only be coarser.
        """
        points = [(x,) for x in xs]
        n_opt = min_cardinality_size(points, 1.0, exact_limit=10)
        n_gdy = len(greedy_partition(points, 1.0))
        assert n_gdy <= n_opt

    @given(POINTS_1D)
    @settings(max_examples=60, deadline=None)
    def test_opt_within_constant_of_greedy_property(self, xs):
        """Lemma 3.3 (second half) in 1-D: n_opt <= 3 * n_greedy.

        A greedy ball spans at most 2*alpha so it meets at most 3 optimal
        diameter-alpha groups on a line.
        """
        points = [(x,) for x in xs]
        n_opt = min_cardinality_size(points, 1.0, exact_limit=10)
        n_gdy = len(greedy_partition(points, 1.0))
        assert n_opt <= 3 * n_gdy
