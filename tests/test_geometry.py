"""Tests for repro.geometry: distances, grid, adjacency search."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, ParameterError
from repro.geometry.adjacency import (
    adjacent_cells,
    any_adjacent_cell,
    brute_force_adjacent_cells,
    collect_adjacent,
)
from repro.geometry.distance import distance, squared_distance, within_distance
from repro.geometry.grid import Grid

COORD = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


class TestDistance:
    def test_squared(self):
        assert squared_distance((0.0, 0.0), (3.0, 4.0)) == 25.0

    def test_distance(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == 5.0

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            distance((0.0,), (1.0, 2.0))
        with pytest.raises(DimensionMismatchError):
            within_distance((0.0,), (1.0, 2.0), 1.0)

    def test_within_boundary_inclusive(self):
        assert within_distance((0.0,), (1.0,), 1.0)
        assert not within_distance((0.0,), (1.0,), 0.999)

    @given(st.lists(COORD, min_size=1, max_size=6), st.floats(min_value=0, max_value=50))
    @settings(max_examples=200)
    def test_within_matches_exact(self, coords, threshold):
        u = tuple(coords)
        v = tuple(c + 1.0 for c in coords)
        expected = distance(u, v) <= threshold
        # Guard against float round-off at the exact boundary.
        if abs(distance(u, v) - threshold) > 1e-9:
            assert within_distance(u, v, threshold) == expected


class TestGrid:
    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            Grid(side=0.0, dim=2)
        with pytest.raises(ParameterError):
            Grid(side=1.0, dim=0)
        with pytest.raises(ParameterError):
            Grid(side=1.0, dim=1, offset=(2.0,))
        with pytest.raises(DimensionMismatchError):
            Grid(side=1.0, dim=2, offset=(0.0,))

    def test_cell_of_origin_grid(self):
        grid = Grid(side=1.0, dim=2, offset=(0.0, 0.0))
        assert grid.cell_of((0.5, 1.5)) == (0, 1)
        assert grid.cell_of((-0.1, 0.0)) == (-1, 0)

    def test_cell_of_respects_offset(self):
        grid = Grid(side=1.0, dim=1, offset=(0.5,))
        assert grid.cell_of((0.4,)) == (-1,)
        assert grid.cell_of((0.6,)) == (0,)

    def test_cell_id_deterministic_and_spread(self):
        grid = Grid(side=1.0, dim=2, offset=(0.0, 0.0))
        ids = {grid.cell_id((i, j)) for i in range(30) for j in range(30)}
        assert len(ids) == 900
        assert grid.cell_id((3, 4)) == grid.cell_id((3, 4))

    def test_lower_corner_roundtrip(self):
        grid = Grid(side=2.0, dim=2, offset=(0.5, 1.0))
        cell = grid.cell_of((3.3, 4.4))
        corner = grid.lower_corner(cell)
        assert corner[0] <= 3.3 < corner[0] + 2.0
        assert corner[1] <= 4.4 < corner[1] + 2.0

    def test_fractional_position_in_range(self):
        rng = random.Random(1)
        grid = Grid(side=1.5, dim=3, rng=rng)
        for _ in range(100):
            p = tuple(rng.uniform(-20, 20) for _ in range(3))
            for frac in grid.fractional_position(p):
                assert 0.0 <= frac <= 1.5

    def test_min_squared_distance_zero_for_own_cell(self):
        grid = Grid(side=1.0, dim=2, offset=(0.0, 0.0))
        p = (0.5, 0.5)
        assert grid.min_squared_distance(p, grid.cell_of(p)) == 0.0

    def test_min_squared_distance_neighbour(self):
        grid = Grid(side=1.0, dim=1, offset=(0.0,))
        assert grid.min_squared_distance((0.25,), (1,)) == pytest.approx(0.5625)

    def test_random_offset_in_range(self):
        grid = Grid(side=2.0, dim=4, rng=random.Random(0))
        assert all(0 <= o < 2.0 for o in grid.offset)

    @given(st.lists(COORD, min_size=1, max_size=4))
    @settings(max_examples=200)
    def test_point_is_inside_its_cell(self, coords):
        dim = len(coords)
        grid = Grid(side=1.25, dim=dim, rng=random.Random(3))
        cell = grid.cell_of(coords)
        assert grid.min_squared_distance(coords, cell) == 0.0


class TestAdjacency:
    def _check_against_brute_force(self, grid, point, radius):
        fast = set(collect_adjacent(grid, point, radius))
        slow = brute_force_adjacent_cells(grid, point, radius)
        # Allow disagreement only within float noise of the boundary.
        for cell in fast.symmetric_difference(slow):
            boundary_gap = abs(
                math.sqrt(grid.min_squared_distance(point, cell)) - radius
            )
            assert boundary_gap < 1e-6, (cell, boundary_gap)

    def test_contains_own_cell(self):
        grid = Grid(side=1.0, dim=2, offset=(0.0, 0.0))
        p = (0.5, 0.5)
        assert grid.cell_of(p) in collect_adjacent(grid, p, 0.1)

    def test_1d_exact(self):
        grid = Grid(side=1.0, dim=1, offset=(0.0,))
        assert sorted(adjacent_cells(grid, (0.5,), 0.6)) == [(-1,), (0,), (1,)]
        assert sorted(adjacent_cells(grid, (0.5,), 0.4)) == [(0,)]

    def test_radius_spanning_multiple_cells(self):
        grid = Grid(side=1.0, dim=1, offset=(0.0,))
        cells = sorted(adjacent_cells(grid, (0.5,), 2.6))
        assert cells == [(-3,), (-2,), (-1,), (0,), (1,), (2,), (3,)]

    def test_negative_radius_empty(self):
        grid = Grid(side=1.0, dim=1, offset=(0.0,))
        assert list(adjacent_cells(grid, (0.5,), -1.0)) == []

    def test_matches_brute_force_2d_grid_small_side(self):
        rng = random.Random(5)
        grid = Grid(side=0.5, dim=2, rng=rng)
        for _ in range(50):
            p = tuple(rng.uniform(-5, 5) for _ in range(2))
            self._check_against_brute_force(grid, p, 0.7)

    def test_matches_brute_force_high_side(self):
        rng = random.Random(6)
        grid = Grid(side=6.0, dim=3, rng=rng)
        for _ in range(50):
            p = tuple(rng.uniform(-20, 20) for _ in range(3))
            self._check_against_brute_force(grid, p, 1.0)

    @given(
        st.lists(COORD, min_size=1, max_size=3),
        st.floats(min_value=0.01, max_value=3.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force_property(self, coords, radius, seed):
        grid = Grid(side=1.1, dim=len(coords), rng=random.Random(seed))
        self._check_against_brute_force(grid, tuple(coords), radius)

    def test_any_adjacent_short_circuit(self):
        grid = Grid(side=1.0, dim=2, offset=(0.0, 0.0))
        p = (0.5, 0.5)
        target = grid.cell_id(grid.cell_of(p))
        assert any_adjacent_cell(grid, p, 0.4, lambda cid: cid == target)
        assert not any_adjacent_cell(grid, p, 0.4, lambda cid: False)

    def test_all_cells_within_radius(self):
        rng = random.Random(9)
        grid = Grid(side=2.0, dim=2, rng=rng)
        p = (3.7, -1.2)
        for cell in collect_adjacent(grid, p, 1.5):
            assert grid.min_squared_distance(p, cell) <= 1.5**2 + 1e-9
