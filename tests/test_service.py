"""Serving-layer tests: tenants, eviction exactness, HTTP surface, SSE.

The headline gate (modelled on fastlimit's concurrency suite) is
differential: N asyncio clients interleave ingest traffic across M
tenants through the in-process ASGI client - with evictions forced
mid-stream by a chaos task *and* by an undersized resident capacity -
and every tenant's final ``state_fingerprint`` must equal a serial
replay of that tenant's point sequence into a fresh summary.  That is
the serving layer's whole correctness story: concurrency, locking and
evict/restore cycles must be invisible in per-tenant state.
"""

from __future__ import annotations

import asyncio
import collections
import random

import pytest

from repro.api import (
    F0InfiniteSpec,
    HeavyHittersSpec,
    L0InfiniteSpec,
    L0SlidingSpec,
)
from repro.engine import state_fingerprint
from repro.errors import ParameterError
from repro.service import (
    FileEnvelopeStore,
    MemoryEnvelopeStore,
    ServiceMetrics,
    ServiceSpec,
    TenantStore,
    create_app,
    derive_tenant_seed,
)
from repro.service.testing import ASGITestClient

#: The concurrency-equivalence gate runs one infinite-window, one
#: sliding-window and one heavy-hitters key (the acceptance criterion).
GATE_SPECS = {
    "l0-infinite": L0InfiniteSpec(alpha=1.0, dim=1, seed=11),
    "l0-sliding": L0SlidingSpec(alpha=1.0, dim=1, seed=11, window_size=48),
    "heavy-hitters": HeavyHittersSpec(
        alpha=1.0, dim=1, seed=11, epsilon=0.1
    ),
}


def run(coro):
    return asyncio.run(coro)


def service_spec(key="l0-infinite", **overrides):
    overrides.setdefault("spec", GATE_SPECS.get(key) or GATE_SPECS["l0-infinite"])
    overrides.setdefault("lock_shards", 4)
    return ServiceSpec(summary=key, **overrides)


def noisy_points(rng, n, groups=10):
    """1-D near-duplicate traffic: ``groups`` entities, noisy sightings."""
    return [
        [rng.randrange(groups) * 3.0 + rng.random() * 0.2] for _ in range(n)
    ]


# --------------------------------------------------------------------- #
# ServiceSpec validation
# --------------------------------------------------------------------- #


class TestServiceSpec:
    def test_valid_spec_builds(self):
        spec = service_spec(capacity=2)
        assert spec.capacity == 2
        assert spec.build_store().__class__ is MemoryEnvelopeStore

    def test_unknown_summary_key_rejected(self):
        with pytest.raises(ParameterError):
            ServiceSpec(summary="nope", spec=GATE_SPECS["l0-infinite"])

    def test_pipeline_tenants_accepted(self):
        # Formerly gated: per-tenant eviction would have leaked the
        # pipeline's workers.  Eviction/drop/shutdown now close
        # worker-owning summaries, so the key is served like any other.
        from repro.api import PipelineSpec

        spec = ServiceSpec(
            summary="batch-pipeline",
            spec=PipelineSpec(alpha=1.0, dim=1, seed=1),
        )
        assert spec.summary == "batch-pipeline"

    def test_mismatched_spec_type_rejected(self):
        with pytest.raises(ParameterError):
            ServiceSpec(summary="f0-infinite", spec=GATE_SPECS["l0-infinite"])

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(capacity=0),
            dict(ttl_seconds=0.0),
            dict(ttl_seconds=-1.0),
            dict(lock_shards=0),
            dict(stream_interval=0.0),
            dict(store="redis"),
            dict(store="file"),  # file without store_path
            dict(store_path="/tmp/x"),  # store_path without file
        ],
    )
    def test_invalid_parameters_rejected(self, overrides):
        with pytest.raises(ParameterError):
            service_spec(**overrides)

    def test_file_store_built_from_spec(self, tmp_path):
        spec = service_spec(store="file", store_path=str(tmp_path / "s"))
        store = spec.build_store()
        assert isinstance(store, FileEnvelopeStore)
        assert store.directory == str(tmp_path / "s")


# --------------------------------------------------------------------- #
# envelope stores
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("flavour", ["memory", "file"])
class TestEnvelopeStores:
    def make(self, flavour, tmp_path):
        if flavour == "file":
            return FileEnvelopeStore(str(tmp_path / "envelopes"))
        return MemoryEnvelopeStore()

    def test_round_trip_and_delete(self, flavour, tmp_path):
        store = self.make(flavour, tmp_path)
        assert store.get("a") is None
        store.put("a", b'{"x": 1}')
        store.put("b", b"bb")
        assert store.get("a") == b'{"x": 1}'
        assert "a" in store and "c" not in store
        assert sorted(store.keys()) == ["a", "b"]
        assert len(store) == 2
        assert store.delete("a") is True
        assert store.delete("a") is False
        assert store.get("a") is None

    def test_put_replaces(self, flavour, tmp_path):
        store = self.make(flavour, tmp_path)
        store.put("t", b"one")
        store.put("t", b"two")
        assert store.get("t") == b"two"
        assert len(store) == 1

    def test_awkward_tenant_names_round_trip(self, flavour, tmp_path):
        # The store layer must accept anything (the HTTP router is the
        # place that restricts the charset); the file store hex-encodes.
        store = self.make(flavour, tmp_path)
        names = ["user@example.com", "päivä", "a b", "..", "0" * 64]
        for i, name in enumerate(names):
            store.put(name, str(i).encode())
        assert sorted(store.keys()) == sorted(names)
        for i, name in enumerate(names):
            assert store.get(name) == str(i).encode()


class TestFileStoreOnDisk:
    def test_foreign_files_ignored(self, tmp_path):
        store = FileEnvelopeStore(str(tmp_path))
        (tmp_path / "README.txt").write_text("not an envelope")
        (tmp_path / "zz-not-hex.json").write_text("{}")
        store.put("t", b"data")
        assert list(store.keys()) == ["t"]

    def test_survives_reopen(self, tmp_path):
        FileEnvelopeStore(str(tmp_path)).put("t", b"data")
        assert FileEnvelopeStore(str(tmp_path)).get("t") == b"data"


# --------------------------------------------------------------------- #
# tenant store: lifecycle, locking, eviction
# --------------------------------------------------------------------- #


class TestTenantStore:
    def test_lazy_build_and_counters(self):
        async def scenario():
            store = TenantStore(service_spec(capacity=8))
            assert store.resident_count == 0
            n = await store.ingest("alice", [(0.0,), (9.0,)])
            assert n == 2
            assert store.builds == 1 and store.resident_count == 1
            await store.ingest("alice", [(3.0,)])
            assert store.builds == 1  # same summary, no rebuild
            counters = store.counters()
            assert counters["resident"] == 1
            assert counters["evictions"] == 0

        run(scenario())

    def test_per_tenant_seed_derivation(self):
        store = TenantStore(service_spec())
        spec_a = store.tenant_spec("alice")
        spec_b = store.tenant_spec("bob")
        assert spec_a.seed != spec_b.seed
        assert spec_a == store.tenant_spec("alice")  # deterministic
        assert spec_a.seed == derive_tenant_seed(11, "alice")
        # Unseeded service spec: used as-is (fresh randomness per build).
        unseeded = ServiceSpec(
            summary="l0-infinite",
            spec=L0InfiniteSpec(alpha=1.0, dim=1, seed=None),
        )
        assert TenantStore(unseeded).tenant_spec("alice").seed is None

    def test_lru_eviction_beyond_capacity(self):
        async def scenario():
            store = TenantStore(service_spec(capacity=2))
            for tenant in ("a", "b", "c"):
                await store.ingest(tenant, [(1.0,)])
            assert store.resident_count == 2
            assert store.resident_tenants() == ["b", "c"]
            assert store.evictions == 1 and store.spilled_count == 1
            assert store.store.get("a") is not None
            # Touching "b" makes "c" the LRU victim for the next arrival.
            await store.query("b")
            await store.ingest("d", [(1.0,)])
            assert store.resident_tenants() == ["b", "d"]

        run(scenario())

    def test_ttl_eviction_with_injected_clock(self):
        async def scenario():
            now = 0.0
            store = TenantStore(
                service_spec(capacity=8, ttl_seconds=10.0),
                clock=lambda: now,
            )
            await store.ingest("a", [(1.0,)])
            await store.ingest("b", [(2.0,)])
            now = 5.0
            await store.query("b")  # refresh b's TTL
            now = 12.0  # a idle 12s > ttl, b idle 7s < ttl
            assert await store.enforce() == 1
            assert store.resident_tenants() == ["b"]
            assert store.evictions == 1
            # The evicted tenant restores transparently on next touch.
            await store.ingest("a", [(3.0,)])
            assert store.restores == 1 and store.spilled_count == 0

        run(scenario())

    def test_evict_restore_is_fingerprint_exact(self):
        async def scenario():
            spec = service_spec(capacity=8)
            churned = TenantStore(spec)
            control = TenantStore(spec)
            rng = random.Random(5)
            chunks = [noisy_points(rng, 17) for _ in range(6)]
            for i, chunk in enumerate(chunks):
                points = [tuple(p) for p in chunk]
                await churned.ingest("t", points)
                await control.ingest("t", points)
                if i % 2 == 0:  # force an evict/restore cycle mid-stream
                    assert await churned.evict("t") is True
            assert await churned.fingerprint("t") == await control.fingerprint(
                "t"
            )
            assert churned.evictions == 3 and churned.restores == 3
            assert control.evictions == 0

        run(scenario())

    def test_drop_forgets_memory_and_store(self):
        async def scenario():
            store = TenantStore(service_spec(capacity=8))
            await store.ingest("gone", [(1.0,)])
            await store.evict("gone")
            assert await store.drop("gone") is True
            assert store.spilled_count == 0
            assert await store.drop("gone") is False
            # A re-touch builds from scratch, not from stale state.
            await store.ingest("gone", [(1.0,)])
            assert store.builds == 2 and store.restores == 0

        run(scenario())

    def test_same_tenant_requests_serialise(self):
        async def scenario():
            store = TenantStore(service_spec(capacity=8))
            order = []

            original = store._materialize

            def slow_materialize(tenant):
                order.append(f"enter-{tenant}")
                summary = original(tenant)
                order.append(f"exit-{tenant}")
                return summary

            store._materialize = slow_materialize
            await asyncio.gather(
                store.ingest("t", [(1.0,)]), store.ingest("t", [(2.0,)])
            )
            assert order == ["enter-t", "exit-t", "enter-t", "exit-t"]

        run(scenario())


# --------------------------------------------------------------------- #
# HTTP surface
# --------------------------------------------------------------------- #


class TestHttpSurface:
    def make_client(self, key="l0-infinite", **overrides):
        app = create_app(service_spec(key, **overrides))
        return app, ASGITestClient(app)

    def test_ingest_query_checkpoint_delete(self):
        async def scenario():
            app, client = self.make_client(capacity=8)
            points = noisy_points(random.Random(3), 30)
            resp = await client.post_json(
                "/v1/alice/ingest", {"points": points}
            )
            assert resp.status == 200
            assert resp.json() == {"tenant": "alice", "ingested": 30}

            resp = await client.get("/v1/alice/query?seed=5")
            assert resp.status == 200
            result = resp.json()["result"]
            assert len(result["vector"]) == 1 and "index" in result
            # Seeded queries are deterministic.
            again = await client.get("/v1/alice/query?seed=5")
            assert again.json() == resp.json()

            resp = await client.post("/v1/alice/checkpoint")
            assert resp.status == 200
            envelope = resp.json()
            assert envelope["format"] == "repro/summary"
            assert envelope["summary"] == "l0-infinite"
            # The wire envelope restores fingerprint-exactly.
            from repro.persist import summary_from_state

            restored = summary_from_state(envelope)
            assert state_fingerprint(restored) == await app.tenants.fingerprint(
                "alice"
            )

            resp = await client.delete("/v1/alice")
            assert resp.status == 200 and resp.json()["dropped"] is True
            resp = await client.delete("/v1/alice")
            assert resp.status == 404

        run(scenario())

    def test_error_statuses_are_uniform_json(self):
        async def scenario():
            app, client = self.make_client(capacity=8)
            cases = [
                ("POST", "/v1/t/ingest", b"{not json", 400),
                ("POST", "/v1/t/ingest", b'{"points": "no"}', 400),
                ("POST", "/v1/t/ingest", b'{"points": [["x"]]}', 400),
                ("GET", "/nope", b"", 404),
                ("GET", "/v1/t/nope", b"", 404),
                ("DELETE", "/v1/t/ingest", b"", 405),
                ("GET", "/metrics/x", b"", 404),
                ("POST", "/metrics", b"", 405),
                ("GET", "/v1/empty/query", b"", 409),  # nothing ingested yet
                ("GET", "/v1/t/query?seed=x", b"", 400),
                ("GET", "/v1/t/stream?interval=0", b"", 400),
            ]
            for method, target, body, expected in cases:
                resp = await client.request(method, target, body=body)
                assert resp.status == expected, (method, target, resp.body)
                assert "error" in resp.json(), (method, target)

        run(scenario())

    def test_unsupported_query_parameter_is_400(self):
        async def scenario():
            _, client = self.make_client(
                "f0-infinite",
                spec=F0InfiniteSpec(alpha=1.0, dim=1, seed=3, copies=3),
            )
            await client.post_json("/v1/t/ingest", {"points": [[0.0], [9.0]]})
            resp = await client.get("/v1/t/query?phi=0.5")
            assert resp.status == 400  # F0 queries take no phi

        run(scenario())

    def test_dimension_mismatch_is_400(self):
        async def scenario():
            _, client = self.make_client(capacity=8)
            resp = await client.post_json(
                "/v1/t/ingest", {"points": [[1.0, 2.0]]}
            )
            assert resp.status == 400
            assert "error" in resp.json()

        run(scenario())

    def test_heavy_hitters_query_shape(self):
        async def scenario():
            _, client = self.make_client("heavy-hitters")
            points = [[0.05], [0.1], [0.0], [9.0]]
            await client.post_json("/v1/t/ingest", {"points": points})
            resp = await client.get("/v1/t/query?phi=0.5")
            assert resp.status == 200
            (hit,) = resp.json()["result"]
            assert hit["count"] == 3
            assert hit["guaranteed_count"] == hit["count"] - hit["error"]
            assert hit["representative"]["vector"] == [0.05]

        run(scenario())

    def test_metrics_report_population_and_throughput(self):
        async def scenario():
            app, client = self.make_client(capacity=2)
            for tenant in ("a", "b", "c"):  # c's arrival evicts a
                await client.post_json(
                    f"/v1/{tenant}/ingest", {"points": [[1.0]] * 10}
                )
            await client.post_json("/v1/a/ingest", {"points": [[1.0]]})
            resp = await client.get("/metrics")
            assert resp.status == 200
            metrics = resp.json()
            tenants = metrics["tenants"]
            assert tenants["resident"] == 2
            assert tenants["capacity"] == 2
            assert tenants["evictions"] >= 2
            assert tenants["restores"] == 1  # a came back
            ingest = metrics["ingest"]
            assert ingest["points_total"] == 31
            assert ingest["requests"] == 4
            assert ingest["points_per_second"] > 0
            route = metrics["routes"]["POST /v1/{tenant}/ingest"]
            assert route["count"] == 4 and route["errors"] == 0
            assert sum(route["latency_ms"].values()) == 4
            # Errors are counted against their route.
            await client.request(
                "POST", "/v1/x/ingest", body=b"{broken"
            )
            metrics = (await client.get("/metrics")).json()
            assert metrics["routes"]["POST /v1/{tenant}/ingest"]["errors"] == 1

        run(scenario())


# --------------------------------------------------------------------- #
# SSE streaming
# --------------------------------------------------------------------- #


class TestStreaming:
    def test_stream_pushes_periodic_results(self):
        async def scenario():
            app = create_app(
                service_spec(capacity=8, stream_interval=0.005)
            )
            client = ASGITestClient(app)
            await client.post_json(
                "/v1/t/ingest",
                {"points": noisy_points(random.Random(1), 20)},
            )
            events = await client.stream(
                "/v1/t/stream?interval=0.005&seed=3", events=3
            )
            assert [event["seq"] for event in events] == [0, 1, 2]
            assert all(event["tenant"] == "t" for event in events)
            assert all("result" in event for event in events)

        run(scenario())

    def test_stream_sees_concurrent_ingestion(self):
        async def scenario():
            app = create_app(service_spec("f0-infinite", spec=F0InfiniteSpec(
                alpha=1.0, dim=1, seed=3, copies=3
            )))
            client = ASGITestClient(app)
            await client.post_json("/v1/t/ingest", {"points": [[0.0]]})

            async def pump():
                for i in range(1, 40):
                    await client.post_json(
                        "/v1/t/ingest", {"points": [[i * 5.0]]}
                    )
                    await asyncio.sleep(0.002)

            pump_task = asyncio.create_task(pump())
            events = await client.stream(
                "/v1/t/stream?interval=0.01", events=5
            )
            await pump_task
            estimates = [event["result"] for event in events]
            assert estimates[-1] > estimates[0]  # growth is visible live

        run(scenario())

    def test_stream_limit_closes_server_side(self):
        async def scenario():
            app = create_app(service_spec(capacity=8))
            client = ASGITestClient(app)
            await client.post_json("/v1/t/ingest", {"points": [[1.0]]})
            events = await client.stream(
                "/v1/t/stream?interval=0.001&limit=2", events=10
            )
            assert len(events) == 2  # server closed after ?limit=

        run(scenario())

    def test_stream_on_empty_tenant_reports_error_events(self):
        async def scenario():
            app = create_app(service_spec(capacity=8))
            client = ASGITestClient(app)
            events = await client.stream(
                "/v1/empty/stream?interval=0.001&limit=2", events=2
            )
            assert all("error" in event for event in events)

        run(scenario())


# --------------------------------------------------------------------- #
# the concurrency-equivalence gate
# --------------------------------------------------------------------- #


async def interleaved_traffic(
    key, *, capacity, num_clients=6, num_tenants=5, chaos=True, seed=0
):
    """N clients interleave ingest across M tenants; returns (app, streams).

    Per-tenant chunk order is fixed (clients pop the tenant's next chunk
    under a client-side lock, and the service serialises same-tenant
    requests under its own lock), while cross-tenant interleaving and
    which-client-sends-what are schedule-dependent.  A chaos task forces
    evictions mid-traffic on top of the LRU churn the small capacity
    already causes.
    """
    app = create_app(
        ServiceSpec(
            summary=key,
            spec=GATE_SPECS[key],
            capacity=capacity,
            lock_shards=3,  # fewer shards than tenants: locks are shared
        )
    )
    client = ASGITestClient(app)
    rng = random.Random(seed)
    tenants = [f"tenant-{i}" for i in range(num_tenants)]
    streams = {
        tenant: [
            noisy_points(rng, rng.randrange(1, 9))
            for _ in range(rng.randrange(12, 20))
        ]
        for tenant in tenants
    }
    pending = {t: collections.deque(chunks) for t, chunks in streams.items()}
    locks = {t: asyncio.Lock() for t in tenants}

    async def one_client(client_id):
        crng = random.Random(1000 + client_id)
        while any(pending.values()):
            tenant = crng.choice(tenants)
            async with locks[tenant]:
                if not pending[tenant]:
                    continue
                chunk = pending[tenant].popleft()
                resp = await client.post_json(
                    f"/v1/{tenant}/ingest", {"points": chunk}
                )
                assert resp.status == 200, resp.body
            await asyncio.sleep(0)

    stop = asyncio.Event()

    async def chaos_evictor():
        crng = random.Random(9999)
        while not stop.is_set():
            await app.tenants.evict(crng.choice(tenants))
            await asyncio.sleep(0)

    chaos_task = asyncio.create_task(chaos_evictor()) if chaos else None
    try:
        await asyncio.gather(
            *(one_client(i) for i in range(num_clients))
        )
    finally:
        stop.set()
        if chaos_task is not None:
            await chaos_task
    return app, streams


class TestConcurrencyEquivalence:
    @pytest.mark.parametrize("key", sorted(GATE_SPECS))
    def test_interleaved_traffic_fingerprints_serial_replay(self, key):
        async def scenario():
            app, streams = await interleaved_traffic(key, capacity=2)
            # Evictions really happened mid-traffic (both LRU and chaos).
            assert app.tenants.evictions > 0
            assert app.tenants.restores > 0
            for tenant, chunks in streams.items():
                served = await app.tenants.fingerprint(tenant)
                replay = app.tenants.fresh_summary(tenant)
                replay.process_many(
                    [tuple(p) for chunk in chunks for p in chunk]
                )
                assert served == state_fingerprint(replay), tenant

        run(scenario())

    @pytest.mark.parametrize("key", sorted(GATE_SPECS))
    def test_evicted_equals_never_evicted(self, key):
        # The same interleaved traffic served with churn (capacity 2 +
        # chaos) and without (roomy capacity, no chaos) must agree
        # tenant by tenant: eviction is unobservable in state.
        async def scenario():
            churned, streams_a = await interleaved_traffic(
                key, capacity=2, chaos=True, seed=7
            )
            roomy, streams_b = await interleaved_traffic(
                key, capacity=64, chaos=False, seed=7
            )
            assert streams_a == streams_b  # same generated traffic
            assert churned.tenants.evictions > 0
            assert roomy.tenants.evictions == 0
            for tenant in streams_a:
                assert await churned.tenants.fingerprint(
                    tenant
                ) == await roomy.tenants.fingerprint(tenant), tenant

        run(scenario())

    def test_traffic_through_file_store(self, tmp_path):
        # Envelope round-trips hit real files and still replay exactly.
        async def scenario():
            app = create_app(
                ServiceSpec(
                    summary="l0-infinite",
                    spec=GATE_SPECS["l0-infinite"],
                    capacity=1,
                    store="file",
                    store_path=str(tmp_path / "spill"),
                )
            )
            client = ASGITestClient(app)
            rng = random.Random(2)
            streams = {
                tenant: noisy_points(rng, 60) for tenant in ("a", "b", "c")
            }
            for i in range(0, 60, 10):  # round-robin: constant churn
                for tenant, points in streams.items():
                    resp = await client.post_json(
                        f"/v1/{tenant}/ingest",
                        {"points": points[i : i + 10]},
                    )
                    assert resp.status == 200
            assert app.tenants.evictions >= 2
            for tenant, points in streams.items():
                replay = app.tenants.fresh_summary(tenant)
                replay.process_many([tuple(p) for p in points])
                assert await app.tenants.fingerprint(
                    tenant
                ) == state_fingerprint(replay)

        run(scenario())


# --------------------------------------------------------------------- #
# metrics unit behaviour (fake clock)
# --------------------------------------------------------------------- #


class TestServiceMetrics:
    def test_rate_window_and_histograms(self):
        now = 0.0
        metrics = ServiceMetrics(clock=lambda: now)
        metrics.observe_ingest(100)
        now = 10.0
        metrics.observe_ingest(100)
        assert metrics.points_per_second() == pytest.approx(20.0)
        now = 65.0  # the t=0 burst ages out of the 60s window
        assert metrics.points_per_second() == pytest.approx(100 / 60.0)
        now = 100.0  # everything aged out
        assert metrics.points_per_second() == 0.0
        metrics.observe_request("GET /x", 200, 0.0004)
        metrics.observe_request("GET /x", 500, 0.040)
        snapshot = metrics.snapshot({"resident": 1})
        route = snapshot["routes"]["GET /x"]
        assert route["count"] == 2 and route["errors"] == 1
        assert route["latency_ms"]["le_1ms"] == 1
        assert route["latency_ms"]["le_100ms"] == 1
        assert snapshot["tenants"] == {"resident": 1}
        assert snapshot["ingest"]["points_total"] == 200


# --------------------------------------------------------------------- #
# state-backend satellites: all-or-nothing ingest, O(1) spill count,
# backend-aware spec, /metrics store section
# --------------------------------------------------------------------- #


class TestAllOrNothingIngest:
    """The ingest-atomicity bugfix: a poisoned batch mutates nothing.

    Before the fix, ``process_many`` raised *at* the bad point, leaving
    the valid prefix ingested; a client retrying its corrected batch
    then double-counted that prefix, breaking the per-tenant
    serial-replay invariant under the most ordinary failure mode there
    is (a retry after a 400).
    """

    POISONS = [
        [[1.0], [2.0], ["x"]],          # unparseable coordinate
        [[1.0], None, [2.0]],           # not a point at all
        [[1.0], [2.0, 3.0], [4.0]],     # wrong dimension mid-batch
        [[1.0], [], [2.0]],             # empty point
    ]

    @pytest.mark.parametrize("poison", POISONS)
    def test_tenant_store_state_unchanged(self, poison):
        async def scenario():
            store = TenantStore(service_spec(capacity=8))
            await store.ingest("alice", [[0.0], [9.0]])
            before = await store.fingerprint("alice")
            with pytest.raises(ParameterError, match="nothing ingested"):
                await store.ingest("alice", poison)
            assert await store.fingerprint("alice") == before

        run(scenario())

    def test_retry_after_rejection_equals_serial_replay(self):
        """The scenario the bug corrupted: 400ed batch, client fixes the
        bad point, retries the WHOLE batch.  The tenant must equal a
        serial replay of good-batch + corrected-batch only."""

        async def scenario():
            store = TenantStore(service_spec(capacity=8))
            good = [[0.0], [9.0], [3.0]]
            poisoned = [[1.0], [2.0], ["x"]]
            corrected = [[1.0], [2.0], [7.0]]
            await store.ingest("alice", good)
            with pytest.raises(ParameterError):
                await store.ingest("alice", poisoned)
            await store.ingest("alice", corrected)
            oracle = store.fresh_summary("alice")
            oracle.process_many(good)
            oracle.process_many(corrected)
            assert await store.fingerprint("alice") == state_fingerprint(
                oracle
            )

        run(scenario())

    def test_http_poisoned_batch_is_400_and_ingests_nothing(self):
        async def scenario():
            app = create_app(service_spec(capacity=8))
            client = ASGITestClient(app)
            good = [[0.0], [9.0]]
            await client.post_json("/v1/alice/ingest", {"points": good})
            before = await app.tenants.fingerprint("alice")
            resp = await client.post_json(
                "/v1/alice/ingest", {"points": [[1.0], ["x"], [2.0]]}
            )
            assert resp.status == 400
            assert "nothing ingested" in resp.json()["error"]
            assert await app.tenants.fingerprint("alice") == before
            # Nothing from the rejected batch counts as ingested.
            metrics = (await client.get("/metrics")).json()
            assert metrics["ingest"]["points_total"] == 2

        run(scenario())

    def test_stream_points_pass_through_untouched(self):
        """Pre-tagged StreamPoints keep their index/time tags (the
        coercion layer must not re-wrap them)."""
        from repro.streams.point import StreamPoint

        async def scenario():
            store = TenantStore(service_spec(capacity=8))
            tagged = [StreamPoint((5.0,), 3, time=1.5)]
            await store.ingest("alice", tagged)
            with pytest.raises(ParameterError):
                await store.ingest(
                    "alice", [StreamPoint((1.0, 2.0), 4)]  # wrong dim
                )

        run(scenario())


class TestSpilledCountIsO1:
    def test_scrape_never_walks_the_spill_directory(self, tmp_path, monkeypatch):
        """The spilled_count bugfix pinned: /metrics used to listdir the
        spill directory per scrape.  After construction, counters() must
        work with directory enumeration forbidden entirely."""
        import os as _os

        async def scenario():
            store = TenantStore(
                service_spec(
                    capacity=1,
                    store="file",
                    store_path=str(tmp_path / "spill"),
                )
            )
            for tenant in ("a", "b", "c"):
                await store.ingest(tenant, [[1.0]])
            assert store.spilled_count == 2  # a and b were evicted

            def forbidden(path):
                raise AssertionError(
                    "/metrics scrape enumerated the spill directory"
                )

            monkeypatch.setattr(_os, "listdir", forbidden)
            assert store.spilled_count == 2
            counters = store.counters()
            assert counters["spilled"] == 2
            stats = store.store_stats()
            assert stats["puts"] == 2  # the two evictions

        run(scenario())


class TestBackendAwareServiceSpec:
    def test_store_names_include_redis(self):
        from repro.service import STORE_NAMES

        assert STORE_NAMES == ("memory", "file", "redis")

    def test_redis_needs_url_and_url_needs_redis(self):
        with pytest.raises(ParameterError):
            service_spec(store="redis")
        with pytest.raises(ParameterError):
            service_spec(store="memory", store_url="redis://localhost")
        with pytest.raises(ParameterError):
            service_spec(
                store="file",
                store_path="/tmp/x",
                store_url="redis://localhost",
            )

    def test_redis_spec_validates_without_the_package(self):
        """Spec validation must not require a redis connection (or even
        the package): unavailability surfaces at build_store() time."""
        spec = service_spec(store="redis", store_url="redis://localhost:1/0")
        assert spec.store == "redis"
        from repro.backends import HAVE_REDIS
        from repro.errors import BackendUnavailableError

        if not HAVE_REDIS:
            with pytest.raises(BackendUnavailableError):
                spec.build_store()

    def test_stores_are_backend_adapters(self, tmp_path):
        from repro.backends import FileBackend, MemoryBackend
        from repro.service import BackendEnvelopeStore

        memory = service_spec().build_store()
        assert isinstance(memory, BackendEnvelopeStore)
        assert isinstance(memory.backend, MemoryBackend)
        file_store = service_spec(
            store="file", store_path=str(tmp_path / "s")
        ).build_store()
        assert isinstance(file_store, BackendEnvelopeStore)
        assert isinstance(file_store.backend, FileBackend)
        file_store.close()


class TestMetricsStoreSection:
    def test_metrics_expose_backend_operation_counters(self, tmp_path):
        async def scenario():
            app = create_app(
                service_spec(
                    capacity=1,
                    store="file",
                    store_path=str(tmp_path / "spill"),
                )
            )
            client = ASGITestClient(app)
            for tenant in ("a", "b"):  # b's arrival evicts a
                await client.post_json(
                    f"/v1/{tenant}/ingest", {"points": [[1.0]]}
                )
            metrics = (await client.get("/metrics")).json()
            store = metrics["store"]
            assert store["puts"] == 1  # a's eviction
            assert store["cas_attempts"] == 0
            assert set(store) == {
                "puts", "gets", "deletes", "cas_attempts", "cas_conflicts"
            }

        run(scenario())


class TestPipelineTenants:
    """``batch-pipeline`` tenants: the former ServiceSpec gate is gone.

    The risk the gate guarded against was leaked workers: a pipeline
    summary owns an executor (threads/processes), and eviction used to
    drop the object without closing it.  Eviction, drop and the
    TenantStore shutdown hook now close worker-owning summaries, and the
    envelope round-trip must stay fingerprint-exact.
    """

    def pipeline_service_spec(self, **overrides):
        from repro.api import PipelineSpec

        overrides.setdefault(
            "spec",
            PipelineSpec(
                alpha=1.0, dim=1, seed=11, num_shards=2, batch_size=8,
                executor="thread", num_workers=2,
            ),
        )
        overrides.setdefault("lock_shards", 4)
        return ServiceSpec(summary="batch-pipeline", **overrides)

    def test_eviction_closes_workers_and_restores_exactly(self):
        store = TenantStore(self.pipeline_service_spec(capacity=4))
        rng = random.Random(5)
        points = noisy_points(rng, 96)

        async def scenario():
            await store.ingest("t", points)
            pipeline = store._resident["t"].summary
            before = await store.fingerprint("t")
            assert pipeline._executor is not None  # workers are live
            assert await store.evict("t")
            assert pipeline._executor is None  # close() ran on eviction
            # Restore from the envelope is fingerprint-exact and the
            # tenant keeps ingesting (workers restart lazily).
            assert await store.fingerprint("t") == before
            await store.ingest("t", noisy_points(rng, 32))
            await store.close()

        run(scenario())

    def test_drop_closes_resident_workers(self):
        store = TenantStore(self.pipeline_service_spec(capacity=4))

        async def scenario():
            await store.ingest("t", noisy_points(random.Random(7), 40))
            pipeline = store._resident["t"].summary
            assert await store.drop("t")
            assert pipeline._executor is None
            await store.close()

        run(scenario())

    def test_shutdown_hook_closes_every_resident(self):
        store = TenantStore(self.pipeline_service_spec(capacity=8))

        async def scenario():
            rng = random.Random(9)
            for tenant in ("a", "b", "c"):
                await store.ingest(tenant, noisy_points(rng, 40))
            pipelines = [
                store._resident[t].summary for t in ("a", "b", "c")
            ]
            await store.close()
            assert store.resident_count == 0
            assert all(p._executor is None for p in pipelines)
            await store.close()  # idempotent

        run(scenario())

    def test_asgi_lifespan_shutdown_closes_tenants(self):
        app = create_app(self.pipeline_service_spec(capacity=8))

        async def scenario():
            client = ASGITestClient(app)
            await client.post_json(
                "/v1/t/ingest",
                {"points": [[float(i % 5)] for i in range(40)]},
            )
            pipeline = app.tenants._resident["t"].summary
            messages = iter(
                [{"type": "lifespan.startup"}, {"type": "lifespan.shutdown"}]
            )
            sent = []

            async def receive():
                return next(messages)

            async def send(message):
                sent.append(message["type"])

            await app({"type": "lifespan"}, receive, send)
            assert sent == [
                "lifespan.startup.complete", "lifespan.shutdown.complete"
            ]
            assert app.tenants.resident_count == 0
            assert pipeline._executor is None

        run(scenario())
