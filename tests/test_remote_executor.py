"""Chaos suite of the remote executor (``repro.engine.remote_worker``).

The remote executor's correctness story has three layers, each pinned
here:

* **Lease protocol** (``repro.backends.lease``): create-only CAS
  acquisition, heartbeat renewal, steal-only-when-stale, release marks
  the entry stale instead of deleting it (the ABA guard).
* **CAS fence** (``repro.engine.queue``): a shard's committed
  ``(consumed_seq, state)`` entry moves only through compare-and-swap
  at the publisher's last-observed version, so a worker that lost its
  shard can never land a torn merge - its next commit conflicts with
  *nothing applied*.
* **Chaos**: a real worker subprocess serving a file-backend queue is
  ``SIGKILL``\\ ed (dead worker: shards re-adopted after the lease ttl,
  final fingerprint identical to a serial replay) and ``SIGSTOP``\\ ped
  across a steal (stale worker: resurrected after its leases are gone,
  it must observe the loss and abandon its replicas wholesale).

Everything in-process runs on the memory backend so the suite stays
fast; the subprocess chaos runs on the file backend (the only shared
backend that needs no server).  The redis flavour joins when
``REPRO_REDIS_URL`` is set and skips cleanly otherwise, mirroring
``tests/test_backends.py``.
"""

from __future__ import annotations

import json
import math
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import PipelineSpec, build
from repro.backends import FileBackend, MemoryBackend
from repro.backends.lease import (
    acquire_lease,
    read_lease,
    release_lease,
    renew_lease,
)
from repro.engine import BatchPipeline, run_resumable, state_fingerprint
from repro.engine.queue import RemoteQueue, decode_chunk, encode_chunk
from repro.engine.remote_worker import run_worker
from repro.errors import CASConflictError, ExecutorError, ParameterError

SRC = Path(__file__).resolve().parent.parent / "src"

BATCH = 32
SHARDS = 3


def _subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def group_stream(n=360, seed=51, groups=10):
    rng = random.Random(seed)
    return [
        (25.0 * rng.randrange(groups) + rng.uniform(0, 0.4),)
        for _ in range(n)
    ]


def pipeline_spec(executor="remote", **overrides) -> PipelineSpec:
    base = dict(
        alpha=1.0,
        dim=1,
        seed=13,
        num_shards=SHARDS,
        batch_size=BATCH,
        executor=executor,
    )
    base.update(overrides)
    return PipelineSpec(**base)


def serial_twin(stream):
    pipeline = build("batch-pipeline", pipeline_spec("serial"))
    pipeline.extend(stream)
    return pipeline


# --------------------------------------------------------------------- #
# chunk codec
# --------------------------------------------------------------------- #


class TestChunkCodec:
    def test_float_chunk_round_trips_as_array(self):
        chunk = [(1.0, 2.5), (3.0, -4.25)]
        payload = encode_chunk(chunk, 2)
        kind, decoded = decode_chunk(payload)
        recovered = [tuple(map(float, row)) for row in decoded]
        assert recovered == [(1.0, 2.5), (3.0, -4.25)]
        if kind == "pickle":  # numpy-less fallback: same float64 tuples
            assert decoded == [(1.0, 2.5), (3.0, -4.25)]

    def test_ineligible_chunk_round_trips_via_pickle(self):
        chunk = [("poison",)]  # not float-coercible: no array form
        payload = encode_chunk(chunk, 1)
        kind, decoded = decode_chunk(payload)
        assert kind == "pickle"
        assert decoded == [("poison",)]

    def test_foreign_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_chunk(b"JUNK" + b"\x00" * 16)


# --------------------------------------------------------------------- #
# lease protocol
# --------------------------------------------------------------------- #


class TestLeaseProtocol:
    def test_fresh_acquire_is_create_only_and_exclusive(self):
        backend = MemoryBackend()
        lease = acquire_lease(backend, "lease/0", "a", ttl=5.0, now=100.0)
        assert lease is not None and lease.worker_id == "a"
        # A fresh holder cannot be displaced.
        assert (
            acquire_lease(backend, "lease/0", "b", ttl=5.0, now=101.0)
            is None
        )
        # Re-acquiring one's own lease refreshes it.
        again = acquire_lease(backend, "lease/0", "a", ttl=5.0, now=102.0)
        assert again is not None and again.version > lease.version

    def test_stale_lease_is_stolen_and_loser_conflicts(self):
        backend = MemoryBackend()
        held = acquire_lease(backend, "lease/0", "a", ttl=1.0, now=100.0)
        # Past the ttl the holder is presumed dead: "b" steals.
        stolen = acquire_lease(backend, "lease/0", "b", ttl=1.0, now=102.0)
        assert stolen is not None and stolen.worker_id == "b"
        assert read_lease(backend, "lease/0")[0] == "b"
        # The original holder's heartbeat now fails - it must abandon.
        with pytest.raises(CASConflictError):
            renew_lease(backend, held, now=102.5)

    def test_renew_keeps_ownership_alive(self):
        backend = MemoryBackend()
        lease = acquire_lease(backend, "lease/0", "a", ttl=1.0, now=100.0)
        lease = renew_lease(backend, lease, now=100.9)
        lease = renew_lease(backend, lease, now=101.8)
        # Beats kept fresh: nobody can steal.
        assert (
            acquire_lease(backend, "lease/0", "b", ttl=1.0, now=102.0)
            is None
        )

    def test_release_marks_stale_without_deleting(self):
        backend = MemoryBackend()
        lease = acquire_lease(backend, "lease/0", "a", ttl=60.0, now=100.0)
        assert release_lease(backend, lease) is True
        # The entry survives (no version reset = no ABA window) but any
        # successor adopts immediately, no ttl wait.
        holder, beat, version = read_lease(backend, "lease/0")
        assert (holder, beat) == ("", 0.0) and version > lease.version
        successor = acquire_lease(
            backend, "lease/0", "b", ttl=60.0, now=100.1
        )
        assert successor is not None
        # Releasing a lease that was already stolen reports the loss.
        assert release_lease(backend, lease) is False

    def test_debris_under_the_key_counts_as_stale(self):
        backend = MemoryBackend()
        backend.put("lease/0", b"\xff not json")
        assert read_lease(backend, "lease/0") == ("", 0.0, 1)
        lease = acquire_lease(backend, "lease/0", "a", ttl=5.0, now=100.0)
        assert lease is not None

    def test_racing_adopters_elect_exactly_one(self):
        backend = MemoryBackend()
        backend.put("lease/0", b'{"worker": "dead", "beat": 0.0}')
        winners = [
            acquire_lease(backend, "lease/0", worker, ttl=1.0, now=50.0)
            for worker in ("a", "b")  # both see the same stale entry
        ]
        # The memory backend serialises the CASes: exactly one wins.
        assert [lease.worker_id for lease in winners if lease] == ["a"]


# --------------------------------------------------------------------- #
# the CAS fence
# --------------------------------------------------------------------- #


class TestCASFence:
    def make_queue(self):
        backend = MemoryBackend()
        queue = RemoteQueue.create(
            backend,
            "q",
            config_state={"fake": True},
            dim=1,
            shard_states=[{"shard": 0}],
        )
        return backend, queue

    def test_stale_publisher_loses_wholly(self):
        """THE torn-merge guard: after a steal, the previous holder's
        commit conflicts and nothing of it lands."""
        _backend, queue = self.make_queue()
        seq, state, version = queue.read_state(0)
        assert (seq, state) == (0, {"shard": 0})
        # The thief re-adopts and commits first.
        thief_version = queue.publish_state(0, version, 1, {"winner": "b"})
        # The stale holder - SIGSTOPped across the steal, say - wakes up
        # and tries to commit its own fold of the same chunk.
        with pytest.raises(CASConflictError) as excinfo:
            queue.publish_state(0, version, 1, {"loser": "a"})
        assert excinfo.value.actual_version == thief_version
        assert queue.read_state(0) == (1, {"winner": "b"}, thief_version)

    def test_commit_chain_advances_the_fence(self):
        _backend, queue = self.make_queue()
        _seq, _state, version = queue.read_state(0)
        for consumed in (1, 2, 3):
            version = queue.publish_state(
                0, version, consumed, {"upto": consumed}
            )
        assert queue.read_state(0)[0] == 3

    def test_meta_published_after_state_seeds(self):
        """Meta's presence implies every shard is adoptable: the state
        entries must be committed first."""
        backend = MemoryBackend()
        queue = RemoteQueue.create(
            backend,
            "q",
            config_state={},
            dim=1,
            shard_states=[{"s": 0}, {"s": 1}],
        )
        meta_version = backend.get_versioned(queue.meta_key)[1]
        assert meta_version == 1
        for shard in range(2):
            assert queue.read_state(shard) is not None
        assert queue.meta()["num_shards"] == 2

    def test_fresh_epoch_per_executor(self):
        backend = MemoryBackend()
        first = RemoteQueue.create(
            backend, "q", config_state={}, dim=1, shard_states=[{}]
        )
        second = RemoteQueue.create(
            backend, "q", config_state={}, dim=1, shard_states=[{}]
        )
        assert second.epoch == first.epoch + 1
        # The old epoch's keys are dead weight, not aliases.
        assert first.state_key(0) != second.state_key(0)
        assert RemoteQueue.open(backend, "q").epoch == second.epoch


# --------------------------------------------------------------------- #
# in-process equivalence (the fast matrix; subprocess chaos is below)
# --------------------------------------------------------------------- #


class TestRemoteMatchesSerial:
    def test_fingerprint_identical_with_local_workers(self):
        stream = group_stream()
        serial = serial_twin(stream)
        with build(
            "batch-pipeline", pipeline_spec(num_workers=2)
        ) as remote:
            remote.extend(stream)
            stats = remote.executor_stats()
            assert state_fingerprint(remote) == state_fingerprint(serial)
        assert stats["executor"] == "remote"
        assert stats["chunks"] == math.ceil(len(stream) / BATCH)
        assert stats["array_chunks"] + stats["pickle_chunks"] == (
            stats["chunks"]
        )

    def test_zero_configuration_default_spec(self):
        # A plain remote spec (no queue knobs) must just work: private
        # memory backend, one local worker thread.
        stream = group_stream(120, seed=3)
        serial = serial_twin(stream)
        with build("batch-pipeline", pipeline_spec()) as remote:
            remote.extend(stream)
            assert state_fingerprint(remote) == state_fingerprint(serial)

    def test_run_resumable_killed_and_resumed(self):
        """Mid-stream kill + resume under the remote executor lands
        fingerprint-identical to an uninterrupted serial run."""

        class Boom(RuntimeError):
            pass

        def exploding(points, fuse):
            for index, point in enumerate(points):
                if index >= fuse:
                    raise Boom
                yield point

        stream = group_stream(300, seed=23)
        serial = serial_twin(stream)
        spec = pipeline_spec(num_workers=2)
        backend = MemoryBackend()
        with pytest.raises(Boom):
            run_resumable(
                spec,
                exploding(stream, BATCH * 5 + 3),
                backend,
                "job",
                checkpoint_every=2,
            )
        checkpointed, _version = BatchPipeline.resume_from(backend, "job")
        assert checkpointed is not None
        assert checkpointed.points_seen % BATCH == 0
        resumed = run_resumable(
            spec, stream, backend, "job", checkpoint_every=2
        )
        assert state_fingerprint(resumed) == state_fingerprint(serial)

    def test_worker_stats_from_direct_run(self):
        # run_worker on a queue with no epoch exits clean on max_idle.
        backend = MemoryBackend()
        stats = run_worker(
            backend, "empty", poll_interval=0.005, max_idle=0.05
        )
        assert stats == {
            "chunks": 0,
            "adoptions": 0,
            "leases_lost": 0,
            "cas_rejections": 0,
            "errors": 0,
        }

    def test_invalid_remote_knobs_rejected(self):
        with pytest.raises(ParameterError, match="lease_ttl"):
            pipeline_spec(lease_ttl=0.0)
        with pytest.raises(ParameterError, match="queue_backend"):
            pipeline_spec(queue_backend="warp")
        with pytest.raises(ParameterError, match="remote"):
            pipeline_spec("thread", queue_key="q")
        # num_workers=0 is remote-only (external workers): everyone
        # else still needs at least one.
        assert pipeline_spec(num_workers=0).num_workers == 0
        with pytest.raises(ParameterError, match="num_workers"):
            pipeline_spec("thread", num_workers=0)


# --------------------------------------------------------------------- #
# subprocess chaos (file backend: the no-server shared transport)
# --------------------------------------------------------------------- #

LEASE_TTL = 0.5


class TestWorkerChaos:
    """Real worker processes, real signals, shared directory backend."""

    def spawn_worker(self, path, queue_key, worker_id, max_idle=None):
        argv = [
            sys.executable,
            "-m",
            "repro.engine.remote_worker",
            "--backend",
            "file",
            "--backend-path",
            str(path),
            "--queue-key",
            queue_key,
            "--worker-id",
            worker_id,
            "--lease-ttl",
            str(LEASE_TTL),
            "--poll-interval",
            "0.01",
        ]
        if max_idle is not None:
            argv += ["--max-idle", str(max_idle)]
        return subprocess.Popen(
            argv,
            env=_subprocess_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def wait_for(self, predicate, timeout=30.0, interval=0.02):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(interval)
        raise AssertionError("chaos scenario timed out")

    def progress(self, reader, queue_key):
        """Total committed chunk count across shards (lock-free reads)."""
        queue = RemoteQueue.open(reader, queue_key)
        if queue is None or queue.meta() is None:
            return 0
        total = 0
        for shard in range(SHARDS):
            found = queue.read_state(shard)
            if found is not None:
                total += found[0]
        return total

    def remote_pipeline(self, path, queue_key):
        return build(
            "batch-pipeline",
            pipeline_spec(
                num_workers=0,  # every worker is an external process
                queue_backend="file",
                queue_path=str(path),
                queue_key=queue_key,
                lease_ttl=LEASE_TTL,
            ),
        )

    def test_sigkilled_worker_is_readopted_fingerprint_exact(
        self, tmp_path
    ):
        """Kill -9 a live worker mid-stream: its shards' leases go
        stale, a successor re-adopts from the last committed states and
        the final fingerprint equals a serial replay - the queued
        chunks at or after each committed seq are still there because a
        chunk is deleted only once its fold is committed."""
        path = tmp_path / "queue"
        stream = group_stream(480, seed=7)
        serial = serial_twin(stream)
        pipeline = self.remote_pipeline(path, "chaos-kill")
        doomed = successor = None
        try:
            pipeline.extend(stream)  # submits; nobody consumes yet
            reader = FileBackend(str(path))
            doomed = self.spawn_worker(path, "chaos-kill", "doomed")
            self.wait_for(
                lambda: self.progress(reader, "chaos-kill") >= 1
            )
            os.kill(doomed.pid, signal.SIGKILL)
            doomed.wait(timeout=30)
            killed_at = self.progress(reader, "chaos-kill")
            assert killed_at >= 1  # died with committed progress
            successor = self.spawn_worker(path, "chaos-kill", "successor")
            # The drain below blocks until the successor - after waiting
            # out the dead worker's lease ttl - finishes every shard.
            assert state_fingerprint(pipeline) == state_fingerprint(
                serial
            )
            reader.close()
        finally:
            for proc in (doomed, successor):
                if proc is not None and proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=30)
            pipeline.close()

    def test_sigstopped_worker_loses_wholly_at_the_fence(self, tmp_path):
        """SIGSTOP a worker across a lease steal, finish the stream with
        a thief, then SIGCONT: the resurrected stale worker must observe
        the loss (lease/fence version moved) and abandon its replicas -
        its counters record the loss, the final state shows no tearing."""
        path = tmp_path / "queue"
        stream = group_stream(480, seed=19)
        serial = serial_twin(stream)
        pipeline = self.remote_pipeline(path, "chaos-stop")
        stale = thief = None
        stopped = False
        watchdog = None
        try:
            pipeline.extend(stream)
            reader = FileBackend(str(path))
            stale = self.spawn_worker(path, "chaos-stop", "stale",
                                      max_idle=3.0)
            # Stop the victim only once it is *idle*: it must have
            # folded every chunk flushed so far (the executor holds the
            # tail until the drain) and just renewed every heartbeat.
            # An idle worker only briefly touches the backend's file
            # lock (~0.2ms heartbeat every ttl/3), so the stop lands in
            # a quiet window instead of freezing the victim inside a
            # critical section - which would wedge the flock for the
            # thief and the submitter alike.
            total_chunks = math.ceil(len(stream) / BATCH)
            flushed = (total_chunks // 8) * 8  # flush_chunks batches
            self.wait_for(
                lambda: self.progress(reader, "chaos-stop") >= flushed
            )
            queue = RemoteQueue.open(reader, "chaos-stop")

            def all_beats_fresh():
                now = time.time()
                beats = [
                    read_lease(reader, queue.lease_key(shard))
                    for shard in range(SHARDS)
                ]
                return all(
                    found is not None and now - found[1] < 0.06
                    for found in beats
                )

            self.wait_for(all_beats_fresh, timeout=30.0, interval=0.002)
            os.kill(stale.pid, signal.SIGSTOP)
            stopped = True
            # Last-resort deadlock valve: if the stop did freeze the
            # victim inside the flock after all, resume it so the test
            # fails on assertions rather than hanging the suite.
            import threading

            watchdog = threading.Timer(
                20.0, lambda: os.kill(stale.pid, signal.SIGCONT)
            )
            watchdog.daemon = True
            watchdog.start()
            thief = self.spawn_worker(path, "chaos-stop", "thief")
            # The thief steals every stale lease and finishes the
            # stream while the victim is frozen.
            assert state_fingerprint(pipeline) == state_fingerprint(
                serial
            )
            # Resurrect the stale worker *before* tearing the queue
            # down: it must wake into a world where its shards belong
            # to someone else, count the losses, and exit idle.
            os.kill(stale.pid, signal.SIGCONT)
            stopped = False
            stdout, _stderr = stale.communicate(timeout=30)
            stale_stats = json.loads(stdout)
            assert (
                stale_stats["leases_lost"]
                + stale_stats["cas_rejections"]
                >= 1
            )
            assert stale_stats["errors"] == 0
            # And the merged result is still exact: nothing the stale
            # worker did after the steal landed.
            assert state_fingerprint(pipeline) == state_fingerprint(
                serial
            )
            reader.close()
        finally:
            if watchdog is not None:
                watchdog.cancel()
            if stale is not None and stopped:
                os.kill(stale.pid, signal.SIGCONT)
            for proc in (stale, thief):
                if proc is not None and proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=30)
            pipeline.close()

    def test_worker_cli_exits_clean_on_idle_queue(self, tmp_path):
        proc = self.spawn_worker(
            tmp_path / "empty", "nobody-home", "idler", max_idle=0.2
        )
        stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 0, stderr
        stats = json.loads(stdout)
        assert stats["chunks"] == 0 and stats["adoptions"] == 0

    def test_worker_cli_requires_backend_flags(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.engine.remote_worker"],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 2  # argparse usage error
        assert "--backend" in proc.stderr


# --------------------------------------------------------------------- #
# redis flavour (skips cleanly without a server, like test_backends)
# --------------------------------------------------------------------- #


class TestRedisFlavour:
    def test_fingerprint_identical_over_redis(self):
        url = os.environ.get("REPRO_REDIS_URL")
        if not url:
            pytest.skip("REPRO_REDIS_URL not set; no redis server to test")
        from repro.backends import HAVE_REDIS, RedisBackend

        if not HAVE_REDIS:
            pytest.skip("redis package not installed (the [redis] extra)")
        probe = RedisBackend(url, namespace="repro-test:remote-exec")
        try:
            probe.ping()
        except Exception:
            pytest.skip("redis server unreachable")
        probe.clear()
        probe.close()
        stream = group_stream(240, seed=29)
        serial = serial_twin(stream)
        spec = pipeline_spec(
            num_workers=2,
            queue_backend="redis",
            queue_url=url,
            queue_key="remote-exec-test",
            lease_ttl=LEASE_TTL,
        )
        with build("batch-pipeline", spec) as remote:
            remote.extend(stream)
            assert state_fingerprint(remote) == state_fingerprint(serial)


# --------------------------------------------------------------------- #
# poisoned shards stay sticky (no retry by adopters)
# --------------------------------------------------------------------- #


class TestPoisonedShard:
    def test_error_is_reported_and_not_retried(self):
        """A chunk that fails to fold reports through the error key;
        the poisoned worker holds the shard (heartbeating) so the next
        adopter does not loop on the same poison."""
        pipeline = build("batch-pipeline", pipeline_spec(num_workers=2))
        pipeline.extend(group_stream(96, seed=31))
        pipeline.submit([(None,)])  # unconvertible: poisons a worker
        with pytest.raises(ExecutorError, match="remote worker failed"):
            pipeline.sync()
        with pytest.raises(ExecutorError):
            pipeline.to_state()
        with pytest.raises(ExecutorError):
            pipeline.close()
        assert pipeline._executor is None  # workers released regardless
