"""Tests for the Section 4 high-dimensional samplers and JL projection."""

from __future__ import annotations

import collections
import random

import pytest

from repro.datasets.synthetic import sparse_high_dim
from repro.errors import ParameterError
from repro.geometry.distance import distance
from repro.highdim.jl import JohnsonLindenstrauss, jl_dimension
from repro.highdim.sparse import HighDimSamplerIW, HighDimSamplerSW
from repro.metrics.accuracy import chi_square_uniformity
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow


class TestJLDimension:
    def test_monotone_in_points(self):
        assert jl_dimension(10**6) > jl_dimension(100)

    def test_monotone_in_epsilon(self):
        assert jl_dimension(1000, epsilon=0.2) > jl_dimension(1000, epsilon=0.8)

    def test_validation(self):
        with pytest.raises(ParameterError):
            jl_dimension(0)
        with pytest.raises(ParameterError):
            jl_dimension(10, epsilon=1.5)


class TestJLProjection:
    def test_output_dim(self):
        proj = JohnsonLindenstrauss(50, 8, seed=0)
        assert len(proj.project([1.0] * 50)) == 8

    def test_dimension_check(self):
        proj = JohnsonLindenstrauss(50, 8, seed=0)
        with pytest.raises(ParameterError):
            proj.project([1.0] * 49)

    def test_batch_matches_single(self):
        proj = JohnsonLindenstrauss(10, 4, seed=1)
        vectors = [[float(i + j) for j in range(10)] for i in range(5)]
        batch = proj.project_all(vectors)
        singles = [proj.project(v) for v in vectors]
        for b, s in zip(batch, singles):
            assert b == pytest.approx(s)

    def test_distance_preservation_statistics(self):
        rng = random.Random(2)
        dim, target = 100, 30
        proj = JohnsonLindenstrauss(dim, target, seed=3)
        distortions = []
        for _ in range(50):
            u = tuple(rng.gauss(0, 1) for _ in range(dim))
            v = tuple(rng.gauss(0, 1) for _ in range(dim))
            original = distance(u, v)
            projected = distance(proj.project(u), proj.project(v))
            distortions.append(projected / original)
        mean = sum(distortions) / len(distortions)
        assert 0.8 < mean < 1.2
        assert all(0.4 < d < 1.9 for d in distortions)

    def test_empty_batch(self):
        proj = JohnsonLindenstrauss(5, 2, seed=0)
        assert proj.project_all([]) == []


class TestHighDimSamplerIW:
    def _stream(self, dim, num_groups, seed):
        vectors, labels, alpha = sparse_high_dim(
            num_groups, 3, dim, rng=random.Random(seed)
        )
        order = list(range(len(vectors)))
        random.Random(seed + 1).shuffle(order)
        points = [StreamPoint(vectors[j], i) for i, j in enumerate(order)]
        stream_labels = [labels[j] for j in order]
        return points, stream_labels, alpha

    def test_basic_sampling(self):
        points, labels, alpha = self._stream(10, 8, seed=0)
        sampler = HighDimSamplerIW(alpha, 10, seed=1)
        for p in points:
            sampler.insert(p)
        assert sampler.sample(random.Random(0)).dim == 10

    def test_grid_side_is_d_alpha(self):
        sampler = HighDimSamplerIW(0.5, 12, seed=0)
        assert sampler.config.grid.side == pytest.approx(6.0)

    def test_uniformity_high_dim(self):
        num_groups = 5
        counts = collections.Counter()
        query_rng = random.Random(1)
        for run in range(300):
            points, labels, alpha = self._stream(10, num_groups, seed=run)
            sampler = HighDimSamplerIW(alpha, 10, seed=run ^ 0x99)
            label_of = {}
            for p, label in zip(points, labels):
                label_of[p.index] = label
                sampler.insert(p)
            counts[label_of[sampler.sample(query_rng).index]] += 1
        _, p_value = chi_square_uniformity(
            [counts.get(g, 0) for g in range(num_groups)]
        )
        assert p_value > 1e-4

    def test_jl_projection_mode(self):
        points, labels, alpha = self._stream(30, 6, seed=5)
        sampler = HighDimSamplerIW(alpha, 30, seed=6, project_to=8)
        assert sampler.projection is not None
        assert sampler.native_dim == 30
        for p in points:
            sampler.insert(p)
        # Samples live in the projected space.
        assert sampler.sample(random.Random(0)).dim == 8

    def test_jl_target_must_reduce(self):
        with pytest.raises(ParameterError):
            HighDimSamplerIW(1.0, 10, project_to=10)

    def test_jl_auto_dimension(self):
        sampler = HighDimSamplerIW(1.0, 500, num_points=1000, jl_epsilon=0.5)
        assert sampler.projection is not None
        assert sampler.projection.output_dim < 500


class TestHighDimSamplerSW:
    def test_window_sampling(self):
        vectors, labels, alpha = sparse_high_dim(
            10, 2, 8, rng=random.Random(7)
        )
        sampler = HighDimSamplerSW(alpha, 8, SequenceWindow(10), seed=8)
        for i, v in enumerate(vectors):
            sampler.insert(StreamPoint(v, i))
        sample = sampler.sample(random.Random(0))
        assert sample.index > len(vectors) - 11

    def test_grid_side(self):
        sampler = HighDimSamplerSW(0.25, 16, SequenceWindow(8), seed=0)
        assert sampler._config.grid.side == pytest.approx(4.0)
