"""Tests for repro.datasets: generators, transforms, validation, catalog."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.catalog import make_dataset, paper_datasets
from repro.datasets.near_duplicates import (
    add_near_duplicates,
    power_law_counts,
    rescale_min_distance,
    uniform_counts,
)
from repro.datasets.synthetic import (
    gaussian_clusters,
    overlapping_chain,
    random_points,
    sparse_high_dim,
    well_separated_clusters,
)
from repro.datasets.uci_like import seeds_like, yacht_like
from repro.datasets.validation import dataset_sparsity, validate_sparse
from repro.errors import ParameterError
from repro.geometry.distance import distance
from repro.partition.natural import is_well_separated


class TestSynthetic:
    def test_random_points_shape(self):
        pts = random_points(10, 4, rng=random.Random(0))
        assert len(pts) == 10
        assert all(len(p) == 4 for p in pts)
        assert all(0 <= x <= 1 for p in pts for x in p)

    def test_random_points_negative_n(self):
        with pytest.raises(ParameterError):
            random_points(-1, 2)

    def test_gaussian_clusters_labels(self):
        pts, labels = gaussian_clusters(30, 3, 3, rng=random.Random(1))
        assert len(pts) == len(labels) == 30
        assert set(labels) == {0, 1, 2}

    def test_well_separated_requires_margin(self):
        with pytest.raises(ParameterError):
            well_separated_clusters(3, 2, 2, separation=2.5)

    def test_well_separated_actually_separated(self):
        pts, labels, alpha = well_separated_clusters(
            5, 6, 3, rng=random.Random(2)
        )
        assert is_well_separated(pts, alpha)

    def test_overlapping_chain_not_separated(self):
        pts, alpha = overlapping_chain(8, 2, rng=random.Random(3))
        assert not is_well_separated(pts, alpha)

    def test_sparse_high_dim_meets_theorem_41(self):
        dim = 8
        pts, labels, alpha = sparse_high_dim(5, 3, dim, rng=random.Random(4))
        beta = dim**1.5 * alpha
        assert validate_sparse(pts, alpha, beta)


class TestUciLike:
    def test_yacht_shape(self):
        pts = yacht_like(rng=random.Random(0))
        assert len(pts) == 308
        assert all(len(p) == 7 for p in pts)

    def test_seeds_shape(self):
        pts = seeds_like(rng=random.Random(0))
        assert len(pts) == 210
        assert all(len(p) == 8 for p in pts)

    def test_no_exact_duplicates(self):
        for maker in (yacht_like, seeds_like):
            pts = maker(rng=random.Random(1))
            assert len(set(pts)) == len(pts)


class TestRescale:
    def test_min_distance_becomes_one(self):
        scaled = rescale_min_distance([(0.0,), (0.5,), (2.0,)])
        min_d = min(
            distance(scaled[i], scaled[j])
            for i in range(3)
            for j in range(i + 1, 3)
        )
        assert min_d == pytest.approx(1.0)

    def test_rejects_exact_duplicates(self):
        with pytest.raises(ParameterError):
            rescale_min_distance([(0.0,), (0.0,)])

    def test_short_inputs_pass_through(self):
        assert rescale_min_distance([(1.0, 2.0)]) == [(1.0, 2.0)]
        assert rescale_min_distance([]) == []

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=2,
            max_size=8,
            unique=True,
        )
    )
    @settings(max_examples=60)
    def test_property_min_distance_one(self, grid_xs):
        # Distinct lattice values avoid degenerate subnormal gaps that
        # underflow the squared distance.
        xs = [x / 7.3 for x in grid_xs]
        scaled = rescale_min_distance([(x,) for x in xs])
        n = len(scaled)
        min_d = min(
            distance(scaled[i], scaled[j])
            for i in range(n)
            for j in range(i + 1, n)
        )
        assert min_d == pytest.approx(1.0, rel=1e-9)


class TestNearDuplicates:
    def test_counts_schemes(self):
        rng = random.Random(0)
        uniform = uniform_counts(50, rng=rng)
        assert all(1 <= k <= 100 for k in uniform)
        power = power_law_counts(50, rng=rng)
        assert sorted(power, reverse=True)[0] == 50  # ceil(n/1)
        assert min(power) == 1  # ceil(n/n)

    def test_power_law_multiset(self):
        power = power_law_counts(20, rng=random.Random(1))
        expected = sorted(math.ceil(20 / i) for i in range(1, 21))
        assert sorted(power) == expected

    def test_transform_well_separated(self):
        rng = random.Random(2)
        base = random_points(20, 5, rng=rng)
        vectors, labels, alpha = add_near_duplicates(
            base, rng=rng, counts=[3] * 20
        )
        assert len(vectors) == 20 * 4
        assert alpha == pytest.approx(1.0 / 5**1.5)
        assert is_well_separated(vectors, alpha)

    def test_labels_match_geometry(self):
        rng = random.Random(3)
        base = random_points(10, 5, rng=rng)
        vectors, labels, alpha = add_near_duplicates(
            base, rng=rng, counts=[2] * 10
        )
        # Same label -> within alpha; different label -> far apart.
        for i in range(0, len(vectors), 7):
            for j in range(0, len(vectors), 11):
                d = distance(vectors[i], vectors[j])
                if labels[i] == labels[j]:
                    assert d <= alpha + 1e-9
                else:
                    assert d > 2 * alpha

    def test_counts_validation(self):
        with pytest.raises(ParameterError):
            add_near_duplicates(
                [(0.0, 1.0), (5.0, 5.0)], rng=random.Random(0), counts=[1]
            )

    def test_empty_base(self):
        vectors, labels, alpha = add_near_duplicates([], rng=random.Random(0))
        assert vectors == [] and labels == [] and alpha == 0.0


class TestCatalog:
    def test_make_dataset_deterministic(self):
        a = make_dataset("Seeds", seed=5)
        b = make_dataset("Seeds", seed=5)
        assert a.vectors == b.vectors
        assert a.labels == b.labels

    def test_make_dataset_unknown(self):
        with pytest.raises(KeyError):
            make_dataset("Nope")

    def test_power_law_variant_name(self):
        ds = make_dataset("Yacht", seed=1, power_law=True)
        assert ds.name == "Yacht-pl"

    def test_paper_datasets_all_eight(self):
        catalog = paper_datasets(seed=0)
        assert sorted(catalog) == [
            "Rand20",
            "Rand20-pl",
            "Rand5",
            "Rand5-pl",
            "Seeds",
            "Seeds-pl",
            "Yacht",
            "Yacht-pl",
        ]

    def test_group_counts_match_base_sizes(self):
        catalog = paper_datasets(seed=0, names=["Seeds", "Yacht"])
        assert catalog["Seeds"].num_groups == 210
        assert catalog["Yacht"].num_groups == 308

    def test_shuffled_stream_alignment(self):
        ds = make_dataset("Seeds", seed=2)
        points, labels = ds.shuffled_stream(random.Random(0))
        assert len(points) == len(labels) == ds.num_points
        assert [p.index for p in points] == list(range(ds.num_points))
        # Vector multiset preserved.
        assert sorted(p.vector for p in points) == sorted(ds.vectors)

    def test_dataset_is_well_separated_sampled_check(self):
        # Full O(n^2) check is too slow; verify on a subsample of groups.
        ds = make_dataset("Seeds", seed=3)
        keep_groups = set(range(0, ds.num_groups, 30))
        sub = [
            (v, label)
            for v, label in zip(ds.vectors, ds.labels)
            if label in keep_groups
        ]
        vectors = [v for v, _ in sub]
        assert is_well_separated(vectors, ds.alpha)


class TestSparsityReport:
    def test_report_fields(self):
        report = dataset_sparsity([(0.0,), (0.1,), (5.0,)], 0.5)
        assert report.num_groups == 2
        assert report.well_separated
        assert report.separation_ratio > 2

    def test_validate_sparse(self):
        assert validate_sparse([(0.0,), (0.2,), (3.0,)], alpha=0.5, beta=2.0)
        assert not validate_sparse([(0.0,), (1.0,)], alpha=0.5, beta=2.0)

    def test_single_group_ratio_infinite(self):
        report = dataset_sparsity([(0.0,)], 0.5)
        assert report.separation_ratio == float("inf")
