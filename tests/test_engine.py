"""Differential test suite for the batched ingestion engine.

The contract (see :mod:`repro.engine`): ``process_many(batch)`` must
leave every sampler in a state identical to inserting the same points
one at a time - for every batch size, including singleton batches,
uneven tails and empty batches.  Each test builds two identically-seeded
samplers, feeds one per-point and the other in batches, and compares
:func:`repro.engine.equivalence.state_fingerprint` trees.
"""

from __future__ import annotations

import random

import pytest

from repro.core.base import SamplerConfig, StreamSampler
from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.f0_sliding import RobustF0EstimatorSW
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.core.heavy_hitters import RobustHeavyHitters
from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.ksample import KDistinctSampler
from repro.core.reservoir import ReservoirMember, WindowReservoir
from repro.core.sliding_window import RobustL0SamplerSW
from repro.engine.batching import chunked
from repro.engine.equivalence import state_fingerprint
from repro.engine.pipeline import BatchPipeline
from repro.errors import ParameterError, ReproError
from repro.streams.point import StreamPoint, as_stream
from repro.streams.windows import SequenceWindow, TimeWindow

from stream_generators import noisy_grid_stream as noisy_stream


#: Batch layouts exercised by every differential case: singletons, a
#: small prime (uneven tails everywhere), a power of two, and one chunk
#: larger than most test streams (a single giant batch).
BATCH_SIZES = [1, 7, 64, 10_000]


def feed_batches(sampler, points, batch_size, *, empty_every=3):
    """Feed ``points`` through process_many with hostile batch layout.

    Interleaves empty batches between chunks to prove they are no-ops.
    """
    for i, chunk in enumerate(chunked(points, batch_size)):
        if i % empty_every == 0:
            sampler.process_many([])
        sampler.process_many(chunk)
    sampler.process_many([])


def assert_differential(make_sampler, points, batch_size):
    """Build twin samplers, feed per-point vs batched, compare states."""
    per = make_sampler()
    for point in points:
        per.insert(point)
    bat = make_sampler()
    feed_batches(bat, points, batch_size)
    assert state_fingerprint(per) == state_fingerprint(bat)
    return per, bat


class TestInfiniteWindowDifferential:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_plain(self, batch_size):
        points = noisy_stream(3000, 60, seed=batch_size)
        assert_differential(
            lambda: RobustL0SamplerIW(1.0, 2, seed=5), points, batch_size
        )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_track_members(self, batch_size):
        # Member tracking draws from the sampler's RNG on the hot path;
        # the fingerprint includes the RNG state, so any skipped or extra
        # draw fails this test.
        points = noisy_stream(2500, 40, seed=100 + batch_size)
        assert_differential(
            lambda: RobustL0SamplerIW(1.0, 2, seed=9, track_members=True),
            points,
            batch_size,
        )

    def test_kwise_hash_and_high_dim(self):
        points = noisy_stream(1200, 30, seed=3, dim=4)
        assert_differential(
            lambda: RobustL0SamplerIW(1.0, 4, seed=11, kwise=8), points, 64
        )

    def test_stream_points_and_raw_tuples_mix(self):
        raw = noisy_stream(800, 20, seed=4)
        mixed = [
            StreamPoint(tuple(v), i) if i % 3 == 0 else v
            for i, v in enumerate(raw)
        ]
        assert_differential(
            lambda: RobustL0SamplerIW(1.0, 2, seed=2), mixed, 7
        )

    def test_rate_halving_crossed_by_batches(self):
        # Enough groups to force several rate halvings mid-stream.
        points = noisy_stream(6000, 1500, seed=8)
        per, bat = assert_differential(
            lambda: RobustL0SamplerIW(1.0, 2, seed=13), points, 64
        )
        assert per.rate_denominator > 1  # halvings actually happened

    def test_samples_identical_after_batching(self):
        points = noisy_stream(2000, 25, seed=6)
        per, bat = assert_differential(
            lambda: RobustL0SamplerIW(1.0, 2, seed=21), points, 64
        )
        assert per.sample(random.Random(0)) == bat.sample(random.Random(0))
        assert per.estimate_f0() == bat.estimate_f0()

    def test_dimension_error_mid_batch_keeps_prefix(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=1)
        good = noisy_stream(10, 5, seed=1)
        with pytest.raises(ParameterError):
            sampler.process_many(good + [(1.0, 2.0, 3.0)])
        assert sampler.points_seen == 10  # prefix ingested, counters synced

    @pytest.mark.parametrize("dim", [3, 5, 8])
    def test_high_dim_batch_ignore_filter(self, dim):
        # Satellite: the dim > 2 batch ignore filter (the vectorised
        # sampled-cell probe, replacing the exponential conservative
        # neighbourhood that forced the old dim <= 2 gate) must be
        # invisible in state.  High-cardinality stream: most points are
        # new groups, so the rate halves repeatedly and the filter
        # carries the batch path.
        rng = random.Random(dim)
        points = []
        for _ in range(2500):
            if rng.random() < 0.25:  # some duplicate mass too
                group = rng.randrange(40)
                base = [30.0 * ((group * (axis + 1)) % 11) for axis in range(dim)]
            else:
                base = [rng.uniform(-400.0, 400.0) for _ in range(dim)]
            points.append(
                tuple(value + rng.uniform(0.0, 0.3) for value in base)
            )
        for batch_size in BATCH_SIZES:
            per, bat = assert_differential(
                lambda: RobustL0SamplerIW(1.0, dim, seed=dim), points, batch_size
            )
        assert per.rate_denominator > 1  # the filter ran under real masks

    def test_scalar_geometry_mode_differential(self):
        # The vectorised chunk geometry is a performance switch, never a
        # semantic one: with it disabled the batch path must still match
        # per-point ingestion (and the vectorised fingerprint).
        from repro.engine.batching import set_vectorized_geometry

        points = noisy_stream(2000, 300, seed=77)
        previous = set_vectorized_geometry(False)
        try:
            per, scalar_bat = assert_differential(
                lambda: RobustL0SamplerIW(1.0, 2, seed=31), points, 64
            )
        finally:
            set_vectorized_geometry(previous)
        vector_bat = RobustL0SamplerIW(1.0, 2, seed=31)
        feed_batches(vector_bat, points, 64)
        assert state_fingerprint(vector_bat) == state_fingerprint(scalar_bat)


class TestFixedRateDifferential:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("rate", [1, 4])
    def test_sequence_window(self, batch_size, rate):
        config = SamplerConfig.create(1.0, 2, seed=31)
        window = SequenceWindow(300)
        points = list(as_stream(noisy_stream(2000, 40, seed=rate)))
        assert_differential(
            lambda: FixedRateSlidingSampler(config, rate, window),
            points,
            batch_size,
        )

    def test_bad_dimension_point_still_evicts_first(self):
        # insert() evicts before point_context() can raise on a bad
        # dimension; the batch path must do the same, or the two paths
        # diverge on which expired records survive the failed call.
        def make():
            config = SamplerConfig.create(1.0, 2, seed=35)
            return FixedRateSlidingSampler(config, 1, SequenceWindow(5))

        prefix = list(as_stream(noisy_stream(20, 3, seed=9)))
        bad = StreamPoint((1.0, 2.0, 3.0), 20)
        per = make()
        for point in prefix:
            per.insert(point)
        with pytest.raises(ReproError):
            per.insert(bad)
        bat = make()
        bat.process_many(prefix)
        with pytest.raises(ReproError):
            bat.process_many([bad])
        assert state_fingerprint(per) == state_fingerprint(bat)

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_time_window_with_member_tracking(self, batch_size):
        config = SamplerConfig.create(1.0, 2, seed=33)
        window = TimeWindow(150.0)
        vectors = noisy_stream(1500, 30, seed=batch_size)
        times = [0.5 * i for i in range(len(vectors))]
        points = list(as_stream(vectors, times=times))
        assert_differential(
            lambda: FixedRateSlidingSampler(
                config, 2, window, track_members=True, member_seed=77
            ),
            points,
            batch_size,
        )


class TestSlidingWindowDifferential:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_sequence_window(self, batch_size):
        points = noisy_stream(4000, 80, seed=batch_size)
        per, bat = assert_differential(
            lambda: RobustL0SamplerSW(1.0, 2, SequenceWindow(500), seed=17),
            points,
            batch_size,
        )
        # The heaps matched verbatim; the user-facing queries must too.
        assert per.sample(random.Random(1)) == bat.sample(random.Random(1))
        assert per.estimate_f0() == bat.estimate_f0()

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_time_window(self, batch_size):
        vectors = noisy_stream(3000, 60, seed=50 + batch_size)
        times = [0.25 * i for i in range(len(vectors))]
        points = list(as_stream(vectors, times=times))
        assert_differential(
            lambda: RobustL0SamplerSW(
                1.0, 2, TimeWindow(120.0), window_capacity=600, seed=19
            ),
            points,
            batch_size,
        )

    def test_cascades_crossed_by_batch_boundaries(self):
        # Many groups per window so Split/Merge cascades fire repeatedly;
        # batch boundaries must be invisible to the promotion machinery.
        points = noisy_stream(5000, 1200, seed=23)
        per, bat = assert_differential(
            lambda: RobustL0SamplerSW(1.0, 2, SequenceWindow(800), seed=29),
            points,
            7,
        )
        assert per.deepest_active_level() == bat.deepest_active_level()
        assert per.deepest_active_level() > 0  # cascades actually fired

    def test_order_violation_mid_batch_keeps_prefix(self):
        sampler = RobustL0SamplerSW(1.0, 1, SequenceWindow(10), seed=3)
        points = [StreamPoint((float(i),), i) for i in range(5)]
        stale = StreamPoint((99.0,), 1)
        with pytest.raises(ParameterError):
            sampler.process_many(points + [stale])
        assert sampler.points_seen == 5


class TestWrapperDifferential:
    @pytest.mark.parametrize("replacement", [False, True])
    def test_ksample(self, replacement):
        points = noisy_stream(1500, 25, seed=41)
        assert_differential(
            lambda: KDistinctSampler(
                1.0, 2, k=3, replacement=replacement, seed=43
            ),
            points,
            7,
        )

    def test_ksample_sliding(self):
        points = noisy_stream(1500, 25, seed=47)
        assert_differential(
            lambda: KDistinctSampler(
                1.0, 2, k=2, window=SequenceWindow(400), seed=53
            ),
            points,
            64,
        )

    def test_f0_infinite(self):
        points = noisy_stream(1200, 80, seed=59)
        per, bat = assert_differential(
            lambda: RobustF0EstimatorIW(
                1.0, 2, epsilon=0.5, copies=3, seed=61
            ),
            points,
            7,
        )
        assert per.estimate() == bat.estimate()

    def test_f0_sliding(self):
        points = noisy_stream(1200, 60, seed=67)
        per, bat = assert_differential(
            lambda: RobustF0EstimatorSW(
                1.0,
                2,
                SequenceWindow(300),
                copies=3,
                seed=71,
            ),
            points,
            64,
        )
        assert per.estimate() == bat.estimate()

    def test_heavy_hitters(self):
        points = noisy_stream(2000, 30, seed=73)
        per, bat = assert_differential(
            lambda: RobustHeavyHitters(1.0, 2, epsilon=0.1, seed=79),
            points,
            7,
        )
        assert [
            (h.representative.vector, h.count, h.error)
            for h in per.heavy_hitters(0.02)
        ] == [
            (h.representative.vector, h.count, h.error)
            for h in bat.heavy_hitters(0.02)
        ]


class TestReservoirDifferential:
    def test_member_reservoir_offer_many(self):
        points = [StreamPoint((float(i),), i) for i in range(500)]
        per, bat = ReservoirMember(), ReservoirMember()
        rng_a, rng_b = random.Random(5), random.Random(5)
        for p in points:
            per.offer(p, rng_a)
        for chunk in chunked(points, 7):
            bat.offer_many(chunk, rng_b)
        assert state_fingerprint(per) == state_fingerprint(bat)
        assert rng_a.getstate() == rng_b.getstate()

    def test_window_reservoir_offer_many(self):
        window = SequenceWindow(50)
        points = [StreamPoint((float(i),), i) for i in range(400)]
        per, bat = WindowReservoir(window), WindowReservoir(window)
        rng_a, rng_b = random.Random(6), random.Random(6)
        for p in points:
            per.offer(p, rng_a)
        bat.offer_many(points[:123], rng_b)
        bat.offer_many([], rng_b)
        bat.offer_many(points[123:], rng_b)
        assert state_fingerprint(per) == state_fingerprint(bat)
        assert per.member(points[-1]) == bat.member(points[-1])


class TestCopyLockstepOnErrors:
    @pytest.mark.parametrize(
        "make_sampler",
        [
            lambda: KDistinctSampler(1.0, 2, k=3, replacement=True, seed=7),
            lambda: RobustF0EstimatorIW(
                1.0, 2, epsilon=0.5, copies=3, seed=7
            ),
            lambda: RobustF0EstimatorSW(
                1.0, 2, SequenceWindow(100), copies=3, seed=7
            ),
        ],
    )
    def test_mid_batch_error_keeps_copies_in_lockstep(self, make_sampler):
        # Per-point ingestion gives every copy the same prefix before an
        # invalid point raises; the batched path must match, not leave
        # copy 0 ahead of the others.
        good = noisy_stream(10, 4, seed=1)
        per = make_sampler()
        with pytest.raises(ParameterError):
            for point in good + [(1.0, 2.0, 3.0)]:
                per.insert(point)
        bat = make_sampler()
        with pytest.raises(ParameterError):
            bat.process_many(good + [(1.0, 2.0, 3.0)])
        assert state_fingerprint(per) == state_fingerprint(bat)

    def test_coercion_error_keeps_copies_in_lockstep(self):
        # A non-numeric coordinate fails during materialisation, before
        # any copy ingests; the valid prefix must still reach every copy
        # exactly as per-point ingestion would have delivered it.
        good = noisy_stream(8, 4, seed=2)
        per = RobustF0EstimatorIW(1.0, 2, epsilon=0.5, copies=3, seed=7)
        with pytest.raises(ValueError):
            for point in good + [("x", "y")]:
                per.insert(point)
        bat = RobustF0EstimatorIW(1.0, 2, epsilon=0.5, copies=3, seed=7)
        with pytest.raises(ValueError):
            bat.process_many(good + [("x", "y")])
        assert all(c.points_seen == len(good) for c in bat._copies)
        assert state_fingerprint(per) == state_fingerprint(bat)


class TestExplicitRngThreading:
    def test_sampler_config_create_accepts_rng(self):
        first = SamplerConfig.create(1.0, 2, rng=random.Random(99))
        second = SamplerConfig.create(1.0, 2, rng=random.Random(99))
        assert first.grid.offset == second.grid.offset
        assert first.cell_hash((3, 4)) == second.cell_hash((3, 4))
        # rng takes precedence over (ignored) seed
        third = SamplerConfig.create(1.0, 2, seed=1, rng=random.Random(99))
        assert third.grid.offset == first.grid.offset

    def test_batch_pipeline_accepts_rng(self):
        stream = noisy_stream(300, 10, seed=5)
        results = []
        for _ in range(2):
            pipeline = BatchPipeline(
                1.0, 2, num_shards=2, rng=random.Random(55), batch_size=32
            )
            pipeline.extend(stream)
            results.append(
                state_fingerprint(pipeline.merge())
            )
        assert results[0] == results[1]


class TestExtendUsesBatchPath:
    def test_extend_equals_insert_loop(self):
        points = noisy_stream(1500, 40, seed=83)
        per = RobustL0SamplerIW(1.0, 2, seed=89)
        for p in points:
            per.insert(p)
        bat = RobustL0SamplerIW(1.0, 2, seed=89)
        returned = bat.extend(iter(points), batch_size=13)
        assert returned == len(points)
        assert state_fingerprint(per) == state_fingerprint(bat)

    def test_extend_validates_batch_size(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=1)
        with pytest.raises(ParameterError):
            sampler.extend([(0.0, 0.0)], batch_size=0)

    def test_default_process_many_is_inherited(self):
        # A minimal StreamSampler subclass gets a correct batched path
        # for free - the documented extension route for new samplers.
        class Recorder(StreamSampler):
            def __init__(self):
                self.seen = []

            def insert(self, point):
                self.seen.append(point)

        recorder = Recorder()
        assert recorder.extend(range(10), batch_size=3) == 10
        assert recorder.seen == list(range(10))


class _CountedFloat:
    """Coordinate object whose ``float()`` coercions are globally counted.

    The pin below feeds these through the pipeline to prove the chunk is
    coerced exactly once per pass: once upon a time the geometry builder
    coerced in the pipeline and the shard coerced again during
    materialisation, doubling the count.
    """

    __slots__ = ("value",)
    calls = 0

    def __init__(self, value: float) -> None:
        self.value = value

    def __float__(self) -> float:
        type(self).calls += 1
        return self.value


class TestChunkCoercedOnce:
    def _stream(self, n, dim=2, seed=31):
        rng = random.Random(seed)
        return [
            tuple(_CountedFloat(rng.uniform(0.0, 50.0)) for _ in range(dim))
            for _ in range(n)
        ]

    def test_pipeline_coerces_each_coordinate_exactly_once(self):
        n, dim = 256, 2
        points = self._stream(n, dim)
        pipeline = BatchPipeline(
            1.0, dim, num_shards=2, seed=7, batch_size=64
        )
        _CountedFloat.calls = 0
        assert pipeline.extend(points) == n
        pipeline.sync()
        assert _CountedFloat.calls == n * dim

    def test_single_sampler_batch_coerces_each_coordinate_exactly_once(self):
        n, dim = 128, 2
        points = self._stream(n, dim, seed=77)
        sampler = RobustL0SamplerIW(1.0, dim, seed=13)
        _CountedFloat.calls = 0
        assert sampler.extend(points, batch_size=32) == n
        assert _CountedFloat.calls == n * dim

    def test_counted_stream_state_matches_plain_floats(self):
        # The reuse fast path must not change state: the same stream fed
        # as counted objects and as plain floats fingerprints equal.
        n, dim = 200, 2
        counted = self._stream(n, dim, seed=5)
        plain = [
            tuple(c.value for c in row) for row in counted
        ]
        first = BatchPipeline(1.0, dim, num_shards=2, seed=3, batch_size=32)
        first.extend(counted)
        second = BatchPipeline(1.0, dim, num_shards=2, seed=3, batch_size=32)
        second.extend(plain)
        assert state_fingerprint(first.merge()) == state_fingerprint(
            second.merge()
        )


class TestArrayChunkFastPath:
    """2-d numeric numpy chunks skip the per-row coercion loop entirely."""

    def _pipeline(self):
        return BatchPipeline(1.0, 2, num_shards=2, seed=21, batch_size=128)

    def test_float_array_chunk_matches_list_chunk(self):
        np = pytest.importorskip("numpy")
        rng = random.Random(17)
        rows = [
            (rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0))
            for _ in range(300)
        ]
        as_array = self._pipeline()
        as_array.extend(np.array(rows, dtype=np.float64))
        as_list = self._pipeline()
        as_list.extend(rows)
        assert state_fingerprint(as_array.merge()) == state_fingerprint(
            as_list.merge()
        )

    def test_integer_array_chunk_matches_float_coercion(self):
        np = pytest.importorskip("numpy")
        rng = random.Random(23)
        rows = [
            (rng.randrange(0, 50), rng.randrange(0, 50)) for _ in range(200)
        ]
        as_array = self._pipeline()
        as_array.extend(np.array(rows, dtype=np.int64))
        as_list = self._pipeline()
        as_list.extend([tuple(float(x) for x in row) for row in rows])
        assert state_fingerprint(as_array.merge()) == state_fingerprint(
            as_list.merge()
        )

    def test_wrong_width_array_raises_like_rows(self):
        np = pytest.importorskip("numpy")
        bad = np.zeros((32, 3), dtype=np.float64)
        from_array = self._pipeline()
        with pytest.raises(ReproError):
            from_array.extend(bad)
        from_rows = self._pipeline()
        with pytest.raises(ReproError):
            from_rows.extend([tuple(row) for row in bad.tolist()])
