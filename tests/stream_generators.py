"""Shared seeded stream generators for the test suite.

One home for the generators that used to be copy-pasted across
``test_engine.py`` / ``test_persist.py`` / ``test_api.py``; the
property-based harness (``test_property_equivalence.py``) builds on the
same shapes.  Kept outside ``conftest.py`` because the repo has a second
conftest under ``benchmarks/`` - a bare ``import conftest`` from a test
module is ambiguous, ``import stream_generators`` is not.
``tests/conftest.py`` re-exports these for fixture-style use.
"""

from __future__ import annotations

import random


def noisy_grid_stream(n, groups, seed, dim=2, spacing=25.0):
    """Seeded random stream of near-duplicate clusters (raw tuples).

    ``groups`` tight clusters on a ``spacing``-spaced lattice; the shared
    generator behind the differential suites.
    """
    rng = random.Random(seed)
    points = []
    for _ in range(n):
        g = rng.randrange(groups)
        base = (spacing * (g % 50), spacing * (g // 50))
        points.append(
            tuple(base[axis % 2] + rng.uniform(0.0, 0.4) for axis in range(dim))
        )
    return points


def line_stream(n, seed, groups):
    """Seeded 1-D stream of ``groups`` clusters on a 25-spaced line.

    The shared generator behind the API-contract and persistence suites
    and the property harness.
    """
    rng = random.Random(seed)
    return [
        (25.0 * rng.randrange(groups) + rng.uniform(0, 0.4),)
        for _ in range(n)
    ]
