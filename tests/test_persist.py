"""Tests for checkpoint/restore of the infinite-window sampler."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.infinite_window import RobustL0SamplerIW
from repro.errors import ParameterError
from repro.persist import (
    dump_sampler,
    load_sampler,
    sampler_from_state,
    sampler_to_state,
)


def build_stream(n=400, seed=0):
    rng = random.Random(seed)
    return [
        (25.0 * rng.randrange(120) + rng.uniform(0, 0.4),) for _ in range(n)
    ]


def snapshot(sampler):
    """Observable state used to compare two samplers."""
    return {
        "rate": sampler.rate_denominator,
        "count": sampler.points_seen,
        "accepted": sorted(
            (r.representative.index, r.accepted, r.count)
            for r in sampler._store.records()
        ),
    }


class TestRoundTrip:
    def test_state_is_json_compatible(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=1)
        for v in build_stream(50):
            sampler.insert(v)
        text = json.dumps(sampler_to_state(sampler))
        assert json.loads(text)["points_seen"] == 50

    def test_round_trip_preserves_state(self):
        sampler = RobustL0SamplerIW(
            1.0, 1, seed=2, expected_stream_length=400
        )
        for v in build_stream(400, seed=2):
            sampler.insert(v)
        restored = sampler_from_state(sampler_to_state(sampler))
        assert snapshot(restored) == snapshot(sampler)

    def test_restored_sampler_continues_identically(self):
        stream = build_stream(600, seed=3)
        full = RobustL0SamplerIW(1.0, 1, seed=3, expected_stream_length=600)
        half = RobustL0SamplerIW(1.0, 1, seed=3, expected_stream_length=600)
        for v in stream[:300]:
            full.insert(v)
            half.insert(v)
        restored = sampler_from_state(sampler_to_state(half))
        for v in stream[300:]:
            full.insert(v)
            restored.insert(v)
        assert snapshot(restored) == snapshot(full)

    def test_round_trip_with_members(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=4, track_members=True)
        for v in build_stream(100, seed=4):
            sampler.insert(v)
        restored = sampler_from_state(sampler_to_state(sampler))
        assert restored.sample_member(random.Random(0)) is not None

    def test_round_trip_kwise_hash(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=5, kwise=8)
        for v in build_stream(100, seed=5):
            sampler.insert(v)
        restored = sampler_from_state(sampler_to_state(sampler))
        assert snapshot(restored) == snapshot(sampler)
        # The hash functions must agree exactly.
        assert restored.config.cell_hash((7,)) == sampler.config.cell_hash((7,))

    def test_file_round_trip(self, tmp_path):
        sampler = RobustL0SamplerIW(1.0, 2, seed=6)
        sampler.insert((1.0, 2.0))
        path = tmp_path / "checkpoint.json"
        dump_sampler(sampler, str(path))
        restored = load_sampler(str(path))
        assert snapshot(restored) == snapshot(sampler)

    def test_version_check(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=7)
        state = sampler_to_state(sampler)
        state["version"] = 999
        with pytest.raises(ParameterError):
            sampler_from_state(state)

    def test_sample_distribution_unchanged_after_restore(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=8)
        for g in range(10):
            sampler.insert((30.0 * g,))
        restored = sampler_from_state(sampler_to_state(sampler))
        rng_a, rng_b = random.Random(9), random.Random(9)
        for _ in range(20):
            assert sampler.sample(rng_a).vector == restored.sample(rng_b).vector
