"""Tests for the universal checkpoint protocol (envelope + per-summary)."""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.api import available, build, entry
from repro.core.infinite_window import RobustL0SamplerIW
from repro.engine import state_fingerprint
from repro.errors import CheckpointError
from repro.persist import (
    FORMAT_NAME,
    FORMAT_VERSION,
    dump_sampler,
    dump_summary,
    dumps_summary,
    load_sampler,
    load_summary,
    loads_summary,
    sampler_from_state,
    sampler_to_state,
    summary_from_state,
    summary_to_state,
)


from stream_generators import line_stream


def build_stream(n=400, seed=0, groups=120):
    """Thin wrapper over the shared generator (this module's defaults)."""
    return line_stream(n, seed, groups)


def snapshot(sampler):
    """Observable state used to compare two samplers."""
    return {
        "rate": sampler.rate_denominator,
        "count": sampler.points_seen,
        "accepted": sorted(
            (r.representative.index, r.accepted, r.count)
            for r in sampler._store.records()
        ),
    }


class TestEnvelope:
    def test_envelope_shape(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=1)
        for v in build_stream(50):
            sampler.insert(v)
        envelope = summary_to_state(sampler)
        assert envelope["format"] == FORMAT_NAME
        assert envelope["version"] == FORMAT_VERSION
        assert envelope["summary"] == "l0-infinite"
        text = json.dumps(envelope)
        assert json.loads(text)["state"]["points_seen"] == 50

    def test_unknown_version_rejected(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=7)
        envelope = summary_to_state(sampler)
        envelope["version"] = 999
        with pytest.raises(CheckpointError):
            summary_from_state(envelope)

    def test_missing_summary_key_rejected(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=7)
        envelope = summary_to_state(sampler)
        del envelope["summary"]
        with pytest.raises(CheckpointError):
            summary_from_state(envelope)

    def test_non_protocol_object_rejected(self):
        with pytest.raises(CheckpointError):
            summary_to_state(object())

    def test_legacy_v1_checkpoint_still_readable(self):
        # A version-1 checkpoint as the original persist module wrote it.
        sampler = RobustL0SamplerIW(1.0, 1, seed=11)
        for v in build_stream(200, seed=11):
            sampler.insert(v)
        v2 = summary_to_state(sampler)["state"]
        v1 = {
            "version": 1,
            "config": v2["config"],
            "rate_denominator": v2["rate_denominator"],
            "points_seen": v2["points_seen"],
            "peak_space_words": v2["peak_space_words"],
            "track_members": v2["track_members"],
            "member_rng_state": repr(sampler._member_rng.getstate()),
            "policy": dict(v2["policy"]),
            "records": v2["records"],
        }
        restored = sampler_from_state(json.loads(json.dumps(v1)))
        assert snapshot(restored) == snapshot(sampler)


class TestInfiniteWindowRoundTrip:
    def test_round_trip_preserves_state(self):
        sampler = RobustL0SamplerIW(
            1.0, 1, seed=2, expected_stream_length=400
        )
        for v in build_stream(400, seed=2):
            sampler.insert(v)
        restored = summary_from_state(summary_to_state(sampler))
        assert snapshot(restored) == snapshot(sampler)
        assert state_fingerprint(restored) == state_fingerprint(sampler)

    def test_restored_sampler_continues_identically(self):
        stream = build_stream(600, seed=3)
        full = RobustL0SamplerIW(1.0, 1, seed=3, expected_stream_length=600)
        half = RobustL0SamplerIW(1.0, 1, seed=3, expected_stream_length=600)
        for v in stream[:300]:
            full.insert(v)
            half.insert(v)
        restored = summary_from_state(summary_to_state(half))
        for v in stream[300:]:
            full.insert(v)
            restored.insert(v)
        assert state_fingerprint(restored) == state_fingerprint(full)

    def test_round_trip_with_members(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=4, track_members=True)
        for v in build_stream(100, seed=4):
            sampler.insert(v)
        restored = summary_from_state(summary_to_state(sampler))
        assert restored.sample_member(random.Random(0)) is not None
        assert state_fingerprint(restored) == state_fingerprint(sampler)

    def test_round_trip_kwise_hash(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=5, kwise=8)
        for v in build_stream(100, seed=5):
            sampler.insert(v)
        restored = summary_from_state(summary_to_state(sampler))
        assert snapshot(restored) == snapshot(sampler)
        # The hash functions must agree exactly.
        assert restored.config.cell_hash((7,)) == sampler.config.cell_hash((7,))

    def test_file_round_trip(self, tmp_path):
        sampler = RobustL0SamplerIW(1.0, 2, seed=6)
        sampler.insert((1.0, 2.0))
        path = tmp_path / "checkpoint.json"
        dump_sampler(sampler, str(path))
        restored = load_sampler(str(path))
        assert snapshot(restored) == snapshot(sampler)

    def test_load_sampler_rejects_other_summaries(self, tmp_path):
        sketch = build("fm", seed=1)
        path = tmp_path / "fm.json"
        dump_summary(sketch, str(path))
        with pytest.raises(CheckpointError):
            load_sampler(str(path))

    def test_sampler_to_state_is_envelope_alias(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=8)
        assert sampler_to_state(sampler) == summary_to_state(sampler)

    def test_sample_distribution_unchanged_after_restore(self):
        sampler = RobustL0SamplerIW(1.0, 1, seed=8)
        for g in range(10):
            sampler.insert((30.0 * g,))
        restored = summary_from_state(summary_to_state(sampler))
        rng_a, rng_b = random.Random(9), random.Random(9)
        for _ in range(20):
            assert sampler.sample(rng_a).vector == restored.sample(rng_b).vector


# ------------------------------------------------------------------ #
# checkpoint -> resume equivalence for EVERY registered summary
# ------------------------------------------------------------------ #

#: Per-key spec kwargs used by the resume matrix.  Streams are 1-D noisy
#: group streams; the item sketches hash the coordinate tuples.
RESUME_SPECS = {
    "l0-infinite": dict(alpha=1.0, dim=1, seed=5),
    "l0-sliding": dict(alpha=1.0, dim=1, seed=5, window_size=64),
    "ksample": dict(alpha=1.0, dim=1, seed=5, k=2),
    "f0-infinite": dict(alpha=1.0, dim=1, seed=5, copies=3, epsilon=0.5),
    "f0-sliding": dict(
        alpha=1.0, dim=1, seed=5, window_size=64, copies=2
    ),
    "heavy-hitters": dict(alpha=1.0, dim=1, seed=5, epsilon=0.1),
    "batch-pipeline": dict(
        alpha=1.0, dim=1, seed=5, num_shards=3, batch_size=25
    ),
    "exact": dict(alpha=1.0, dim=1, seed=5),
    "naive-reservoir": dict(seed=5),
    "minrank": dict(seed=5),
    "fm": dict(seed=5),
    "loglog": dict(seed=5),
    "hyperloglog": dict(seed=5),
    "bjkst": dict(seed=5),
}


def _ingest(summary, key, points):
    # process_many is uniform across the registry (the pipeline chunks by
    # its batch size internally).  The pipeline's resume cut must fall on
    # a chunk boundary, which the half sizes below respect (250 % 25 == 0).
    summary.process_many(points)


class TestResumeEquivalenceMatrix:
    """Ingest half, round-trip through JSON, finish; fingerprints match."""

    @pytest.mark.parametrize("key", sorted(RESUME_SPECS))
    def test_half_stream_resume(self, key):
        kwargs = RESUME_SPECS[key]
        stream = build_stream(500, seed=17, groups=9)
        half = 250  # a multiple of the pipeline batch size
        uninterrupted = build(key, **kwargs)
        interrupted = build(key, **kwargs)
        _ingest(uninterrupted, key, stream)
        _ingest(interrupted, key, stream[:half])
        envelope = json.loads(json.dumps(summary_to_state(interrupted)))
        resumed = summary_from_state(envelope)
        assert type(resumed) is entry(key).summary_cls
        _ingest(resumed, key, stream[half:])
        assert state_fingerprint(resumed) == state_fingerprint(uninterrupted)

    def test_matrix_covers_every_registered_key(self):
        assert sorted(RESUME_SPECS) == available()

    @pytest.mark.parametrize(
        "key", ["l0-sliding", "f0-sliding", "ksample"]
    )
    def test_windowed_resume_with_time_window(self, key):
        kwargs = dict(RESUME_SPECS[key])
        kwargs.pop("window_size", None)
        kwargs.update(window_seconds=40.0, window_capacity=64)
        stream = build_stream(400, seed=23, groups=9)
        uninterrupted = build(key, **kwargs)
        interrupted = build(key, **kwargs)
        uninterrupted.process_many(stream)
        interrupted.process_many(stream[:200])
        resumed = summary_from_state(
            json.loads(json.dumps(summary_to_state(interrupted)))
        )
        resumed.process_many(stream[200:])
        assert state_fingerprint(resumed) == state_fingerprint(uninterrupted)

    def test_file_round_trip_any_summary(self, tmp_path):
        summary = build("l0-sliding", **RESUME_SPECS["l0-sliding"])
        summary.process_many(build_stream(200, seed=29, groups=9))
        path = tmp_path / "sliding.json"
        dump_summary(summary, str(path))
        restored = load_summary(str(path))
        assert state_fingerprint(restored) == state_fingerprint(summary)


# ------------------------------------------------------------------ #
# legacy sliding-window layout (one store per level) stays readable
# ------------------------------------------------------------------ #


class TestLegacySlidingLayout:
    """Sliding checkpoints written before the shared-store refactor keep
    a per-level ``"levels"`` list; ``from_state`` must still restore them
    (records re-tagged with their level, live heap entries folded into
    the shared heap) and continue the stream correctly.

    ``tests/data/legacy_sliding_checkpoint.json`` was generated by the
    pre-refactor code: the first 150 points of the deterministic stream
    below into ``RobustL0SamplerSW(1.0, 1, SequenceWindow(64),
    seed=20260730)``.
    """

    CHECKPOINT = (
        Path(__file__).parent / "data" / "legacy_sliding_checkpoint.json"
    )

    @staticmethod
    def legacy_stream():
        return line_stream(300, seed=424242, groups=8)

    def restored(self):
        envelope = json.loads(self.CHECKPOINT.read_text())
        return summary_from_state(envelope)

    def test_legacy_layout_restores(self):
        sampler = self.restored()
        assert sampler.points_seen == 150
        assert sampler.space_words() == sampler.recount_space_words()
        # Every record landed at the level whose list held it.
        total = sum(
            len(level_map) for level_map in sampler._level_records
        )
        assert total == len(list(sampler._store.records()))
        assert total > 0
        for index, level_map in enumerate(sampler._level_records):
            for record in level_map.values():
                assert record.level == index

    def test_legacy_restore_continues_correctly(self):
        sampler = self.restored()
        stream = self.legacy_stream()
        for point in stream[150:]:
            sampler.insert(point)
        assert sampler.points_seen == 300
        assert sampler.space_words() == sampler.recount_space_words()
        # Invariant I1 (one record per group across levels) and the
        # sample-in-window guarantee survive the format migration.
        seen_groups = set()
        for level_map in sampler._level_records:
            for record in level_map.values():
                group = round(record.representative.vector[0] / 25.0)
                assert group not in seen_groups
                seen_groups.add(group)
        window = sampler.window
        rng = random.Random(1)
        for _ in range(10):
            assert window.in_window(sampler.sample(rng), sampler._latest)

    def test_legacy_round_trips_into_new_layout(self):
        sampler = self.restored()
        reserialized = json.loads(json.dumps(summary_to_state(sampler)))
        assert "levels" not in reserialized["state"]
        again = summary_from_state(reserialized)
        assert state_fingerprint(again) == state_fingerprint(sampler)


class TestBytesEnvelopes:
    """dumps_summary / loads_summary: the filesystem-free envelope twins."""

    def test_bytes_round_trip_is_fingerprint_exact(self):
        stream = build_stream(300, seed=9)
        half = 150
        uninterrupted = build("l0-infinite", alpha=1.0, dim=1, seed=4)
        spilled = build("l0-infinite", alpha=1.0, dim=1, seed=4)
        uninterrupted.process_many(stream)
        spilled.process_many(stream[:half])
        data = dumps_summary(spilled)
        assert isinstance(data, bytes)
        restored = loads_summary(data)
        restored.process_many(stream[half:])
        assert state_fingerprint(restored) == state_fingerprint(
            uninterrupted
        )

    def test_path_functions_are_thin_wrappers(self, tmp_path):
        sampler = build("l0-infinite", alpha=1.0, dim=1, seed=4)
        sampler.process_many(build_stream(60, seed=2))
        path = tmp_path / "ckpt.json"
        dump_summary(sampler, str(path))
        assert path.read_bytes() == dumps_summary(sampler)
        assert state_fingerprint(load_summary(str(path))) == (
            state_fingerprint(loads_summary(dumps_summary(sampler)))
        )

    @pytest.mark.parametrize(
        "data",
        [b"not json", b'"a string"', b"[1, 2]", b"\xff\xfe\x00", b""],
        ids=["text", "non-object", "array", "not-utf8", "empty"],
    )
    def test_loads_rejects_non_envelopes(self, data):
        with pytest.raises(CheckpointError):
            loads_summary(data)

    def test_bytes_envelopes_cover_every_registered_key(self):
        # Same matrix the path-based resume test walks, through bytes.
        stream = build_stream(120, seed=31, groups=9)
        for key, kwargs in sorted(RESUME_SPECS.items()):
            summary = build(key, **kwargs)
            summary.process_many(stream)
            restored = loads_summary(dumps_summary(summary))
            assert type(restored) is entry(key).summary_cls, key
