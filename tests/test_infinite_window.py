"""Tests for Algorithm 1 (RobustL0SamplerIW)."""

from __future__ import annotations

import collections
import random

import pytest

from repro.core.infinite_window import RobustL0SamplerIW
from repro.errors import EmptySampleError, ParameterError
from repro.geometry.distance import distance
from repro.metrics.accuracy import chi_square_uniformity
from repro.streams.point import StreamPoint


class TestBasics:
    def test_empty_sample_raises(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=0)
        with pytest.raises(EmptySampleError):
            sampler.sample()

    def test_single_point(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=0)
        sampler.insert((3.0, 4.0))
        assert sampler.sample().vector == (3.0, 4.0)

    def test_first_point_always_accepted_at_rate_one(self):
        # R starts at 1, so the very first point lands in S_acc.
        for seed in range(20):
            sampler = RobustL0SamplerIW(1.0, 2, seed=seed)
            sampler.insert((0.0, 0.0))
            assert sampler.accept_size == 1

    def test_dimension_check(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=0)
        with pytest.raises(ParameterError):
            sampler.insert((1.0,))

    def test_kappa_validation(self):
        with pytest.raises(ParameterError):
            RobustL0SamplerIW(1.0, 2, kappa0=0)

    def test_points_seen(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=0)
        sampler.extend([(0.0, 0.0), (5.0, 5.0)])
        assert sampler.points_seen == 2

    def test_accepts_stream_points_and_raw(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=0)
        sampler.insert(StreamPoint((0.0, 0.0), 0))
        sampler.insert((9.0, 9.0))
        assert sampler.points_seen == 2


class TestRepresentativeSemantics:
    def test_duplicates_do_not_add_records(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=1)
        sampler.insert((0.0, 0.0))
        before = sampler.num_candidate_groups
        for _ in range(20):
            sampler.insert((0.05, 0.05))
        assert sampler.num_candidate_groups == before

    def test_representative_is_first_point(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=1)
        sampler.insert((0.0, 0.0))
        sampler.insert((0.1, 0.1))
        reps = sampler.accepted_representatives()
        assert reps and reps[0].vector == (0.0, 0.0)

    def test_sample_is_a_representative(self):
        rng = random.Random(0)
        sampler = RobustL0SamplerIW(1.0, 2, seed=2)
        groups = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]
        firsts = set()
        for g in groups:
            firsts.add(g)
            sampler.insert(g)
            for _ in range(5):
                sampler.insert((g[0] + rng.uniform(0, 0.3), g[1]))
        for _ in range(20):
            assert sampler.sample(rng).vector in firsts

    def test_group_counts_tracked(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=3, track_members=True)
        sampler.insert((0.0, 0.0))
        for _ in range(9):
            sampler.insert((0.1, 0.1))
        records = sampler._store.accepted_records()
        assert records[0].count == 10


class TestRateAdaptation:
    def _run(self, num_groups, seed, **kwargs):
        sampler = RobustL0SamplerIW(
            1.0, 2, seed=seed, expected_stream_length=num_groups, **kwargs
        )
        for i in range(num_groups):
            # Far-apart groups on a coarse lattice.
            sampler.insert((20.0 * (i % 100), 20.0 * (i // 100)))
        return sampler

    def test_rate_grows_with_groups(self):
        sampler = self._run(600, seed=4)
        assert sampler.rate_denominator > 1

    def test_accept_bound_invariant(self):
        sampler = self._run(600, seed=5)
        # Post-insert invariant: |S_acc| <= threshold.
        assert sampler.accept_size <= sampler._policy.threshold()

    def test_accept_set_definition_after_doubling(self):
        sampler = self._run(600, seed=6)
        mask = sampler.rate_denominator - 1
        for record in sampler._store.accepted_records():
            assert record.cell_hash & mask == 0
        for record in sampler._store.rejected_records():
            assert record.cell_hash & mask != 0
            assert any(v & mask == 0 for v in record.adj_hashes)

    def test_accept_capacity_override(self):
        sampler = self._run(600, seed=7, accept_capacity=10)
        assert sampler.accept_size <= 10

    def test_nonempty_accept_set_high_probability(self):
        # Lemma 2.5: S_acc stays non-empty.
        for seed in range(30):
            sampler = self._run(300, seed=seed)
            assert sampler.accept_size > 0


class TestUniformity:
    def test_uniform_over_groups(self):
        """Theorem 2.4: each group sampled with probability ~1/n."""
        num_groups = 8
        centers = [(12.0 * i, 0.0) for i in range(num_groups)]
        runs = 600
        counts = collections.Counter()
        query_rng = random.Random(42)
        for run in range(runs):
            rng = random.Random(run)
            sampler = RobustL0SamplerIW(1.0, 2, seed=run)
            stream = []
            for g, c in enumerate(centers):
                for _ in range(rng.randint(1, 6)):
                    stream.append((g, (c[0] + rng.uniform(0, 0.4), c[1])))
            rng.shuffle(stream)
            for _, v in stream:
                sampler.insert(v)
            sample = sampler.sample(query_rng)
            group = min(
                range(num_groups),
                key=lambda g: distance(centers[g], sample.vector),
            )
            counts[group] += 1
        dense = [counts.get(g, 0) for g in range(num_groups)]
        _, p_value = chi_square_uniformity(dense)
        assert p_value > 1e-4, dense

    def test_heavy_group_not_overweighted(self):
        """The paper's core claim: duplicate-heavy groups stay at 1/n."""
        runs = 400
        heavy_hits = 0
        query_rng = random.Random(7)
        for run in range(runs):
            rng = random.Random(run)
            sampler = RobustL0SamplerIW(1.0, 2, seed=run ^ 0xABC)
            stream = [(0, (0.0 + rng.uniform(0, 0.3), 0.0)) for _ in range(60)]
            stream += [(1, (15.0, 0.0))]
            stream += [(2, (30.0, 0.0))]
            rng.shuffle(stream)
            for _, v in stream:
                sampler.insert(v)
            sample = sampler.sample(query_rng)
            if sample.vector[0] < 7.0:
                heavy_hits += 1
        # Uniform target: 1/3 of runs. Naive sampling would give ~97%.
        assert 0.2 < heavy_hits / runs < 0.5


class TestMembers:
    def test_member_requires_flag(self):
        sampler = RobustL0SamplerIW(1.0, 2, seed=0)
        sampler.insert((0.0, 0.0))
        with pytest.raises(ParameterError):
            sampler.sample_member()

    def test_member_uniform_within_group(self):
        runs = 500
        hits = collections.Counter()
        for run in range(runs):
            sampler = RobustL0SamplerIW(
                1.0, 2, seed=run, track_members=True
            )
            for i in range(5):
                sampler.insert((0.1 * i, 0.0))
            member = sampler.sample_member(random.Random(run))
            hits[member.vector] += 1
        # All five points of the single group should appear ~uniformly.
        assert len(hits) == 5
        _, p_value = chi_square_uniformity(list(hits.values()))
        assert p_value > 1e-4


class TestRejectSetBound:
    def test_lemma_2_6_reject_set_within_constant_of_accept(self):
        """Lemma 2.6 / Lemma 4.2: |S_rej| = O(|S_acc|) with the constant
        driven by |adj(p)|; at the default side d*alpha the expected
        |adj| is small, so a generous factor of 10 must hold."""
        for seed in range(5):
            sampler = RobustL0SamplerIW(
                1.0, 3, seed=seed, expected_stream_length=2000
            )
            rng = random.Random(seed)
            for _ in range(2000):
                sampler.insert(
                    (
                        30.0 * rng.randrange(40),
                        30.0 * rng.randrange(40),
                        30.0 * rng.randrange(40),
                    )
                )
            assert sampler.reject_size <= max(10, 10 * sampler.accept_size)


class TestSpaceAndEstimate:
    def test_space_words_grows_then_bounded(self):
        sampler = RobustL0SamplerIW(
            1.0, 2, seed=9, expected_stream_length=500
        )
        for i in range(500):
            sampler.insert((25.0 * (i % 50), 25.0 * (i // 50)))
        assert 0 < sampler.space_words() <= sampler.peak_space_words

    def test_estimate_f0_order_of_magnitude(self):
        sampler = RobustL0SamplerIW(
            1.0, 2, seed=10, expected_stream_length=400, kappa0=16
        )
        for i in range(400):
            sampler.insert((25.0 * (i % 40), 25.0 * (i // 40)))
        estimate = sampler.estimate_f0()
        assert 100 <= estimate <= 1600  # true 400

    def test_deterministic_given_seed(self):
        def run():
            sampler = RobustL0SamplerIW(1.0, 2, seed=11)
            for i in range(100):
                sampler.insert((10.0 * i, 0.0))
            return sorted(
                p.index for p in sampler.accepted_representatives()
            )

        assert run() == run()
