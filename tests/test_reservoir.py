"""Tests for repro.core.reservoir (Section 2.3 member sampling)."""

from __future__ import annotations

import collections
import random

import pytest

from repro.core.reservoir import ReservoirMember, WindowReservoir
from repro.errors import EmptySampleError
from repro.metrics.accuracy import chi_square_uniformity
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow


def pts(n):
    return [StreamPoint((float(i),), i) for i in range(n)]


class TestReservoirMember:
    def test_empty_raises(self):
        with pytest.raises(EmptySampleError):
            ReservoirMember().member()

    def test_single_item(self):
        res = ReservoirMember()
        res.offer(StreamPoint((7.0,), 0), random.Random(0))
        assert res.member().vector == (7.0,)
        assert res.count == 1

    def test_uniform_over_offers(self):
        counts = collections.Counter()
        for seed in range(600):
            rng = random.Random(seed)
            res = ReservoirMember()
            for p in pts(5):
                res.offer(p, rng)
            counts[res.member().index] += 1
        _, p_value = chi_square_uniformity(
            [counts.get(i, 0) for i in range(5)]
        )
        assert p_value > 1e-4

    def test_space_words(self):
        res = ReservoirMember()
        assert res.space_words() == 1
        res.offer(StreamPoint((1.0, 2.0), 0), random.Random(0))
        assert res.space_words() == 5


class TestWindowReservoir:
    def test_empty_raises(self):
        res = WindowReservoir(SequenceWindow(5))
        with pytest.raises(EmptySampleError):
            res.member(StreamPoint((0.0,), 10))

    def test_only_unexpired_returned(self):
        res = WindowReservoir(SequenceWindow(10))
        stream = pts(50)
        rng = random.Random(1)
        for p in stream:
            res.offer(p, rng)
        member = res.member(stream[-1])
        assert member.index > 39

    def test_kept_set_is_logarithmic(self):
        res = WindowReservoir(SequenceWindow(1000))
        rng = random.Random(2)
        for p in pts(1000):
            res.offer(p, rng)
        # Expected kept size is the number of right-to-left maxima:
        # harmonic(1000) ~ 7.5; allow generous slack.
        assert len(res) < 40

    def test_priorities_strictly_decreasing(self):
        res = WindowReservoir(SequenceWindow(100))
        rng = random.Random(3)
        for p in pts(200):
            res.offer(p, rng)
        priorities = [priority for priority, _ in res._entries]
        assert all(a > b for a, b in zip(priorities, priorities[1:]))

    def test_uniform_over_window(self):
        window = SequenceWindow(8)
        counts = collections.Counter()
        stream = pts(24)
        for seed in range(800):
            rng = random.Random(seed)
            res = WindowReservoir(window)
            for p in stream:
                res.offer(p, rng)
            counts[res.member(stream[-1]).index] += 1
        dense = [counts.get(i, 0) for i in range(16, 24)]
        assert sum(dense) == 800  # nothing outside the window
        _, p_value = chi_square_uniformity(dense)
        assert p_value > 1e-4

    def test_eviction_removes_expired_entries(self):
        res = WindowReservoir(SequenceWindow(5))
        rng = random.Random(4)
        stream = pts(30)
        for p in stream:
            res.offer(p, rng)
        res.member(stream[-1])
        assert all(p.index > 24 for _, p in res._entries)

    def test_space_words(self):
        res = WindowReservoir(SequenceWindow(5))
        assert res.space_words() == 1
        res.offer(StreamPoint((1.0,), 0), random.Random(0))
        assert res.space_words() > 1
