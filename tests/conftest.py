"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.base import SamplerConfig
from repro.datasets.near_duplicates import add_near_duplicates
from repro.datasets.synthetic import random_points, well_separated_clusters
from repro.streams.point import StreamPoint


@pytest.fixture
def rng() -> random.Random:
    """A deterministic Random instance."""
    return random.Random(12345)


@pytest.fixture
def small_separated():
    """A tiny well-separated dataset: (points, labels, alpha), dim 2."""
    points, labels, alpha = well_separated_clusters(
        6, 5, 2, rng=random.Random(7)
    )
    return points, labels, alpha


@pytest.fixture
def noisy_stream():
    """A paper-style noisy stream: (stream points, labels, alpha), dim 5."""
    gen = random.Random(99)
    base = random_points(30, 5, rng=gen)
    counts = [gen.randint(1, 6) for _ in range(30)]
    vectors, labels, alpha = add_near_duplicates(base, rng=gen, counts=counts)
    order = list(range(len(vectors)))
    gen.shuffle(order)
    points = [StreamPoint(vectors[j], i) for i, j in enumerate(order)]
    stream_labels = [labels[j] for j in order]
    return points, stream_labels, alpha


@pytest.fixture
def config_2d() -> SamplerConfig:
    """A small deterministic 2-D sampler configuration."""
    return SamplerConfig.create(alpha=1.0, dim=2, seed=3)


def stream_of(vectors) -> list[StreamPoint]:
    """Wrap raw vectors as a stream (helper usable by all test modules)."""
    return [StreamPoint(tuple(map(float, v)), i) for i, v in enumerate(vectors)]


# Shared stream generators (import `from stream_generators import ...`
# in test modules; fixture wrappers below for fixture-style access).
from stream_generators import line_stream, noisy_grid_stream  # noqa: E402,F401


@pytest.fixture
def grid_stream_factory():
    """Factory fixture over :func:`stream_generators.noisy_grid_stream`."""
    return noisy_grid_stream


@pytest.fixture
def line_stream_factory():
    """Factory fixture over :func:`stream_generators.line_stream`."""
    return line_stream
