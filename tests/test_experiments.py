"""Smoke tests for the experiment harness (quick profiles)."""

from __future__ import annotations

import pytest

from repro.experiments.registry import (
    EXPERIMENTS,
    format_table,
    run_experiment,
)


class TestRegistry:
    def test_all_ids_present(self):
        assert {
            "fig5_12",
            "fig13",
            "fig14",
            "fig15",
            "thm24",
            "thm27",
            "thm31",
            "thm41",
            "sec5",
            "ablations",
        } == set(EXPERIMENTS)

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_format_table_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["bbbb", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert len(lines) == 4


class TestQuickRuns:
    """Each experiment must run end-to-end at a tiny scale and produce
    structurally valid output."""

    def test_fig13_time(self):
        out = run_experiment("fig13", profile="quick", seed=0)
        rows = out.data["ptime"]
        assert len(rows) == 4  # two base datasets x two variants
        assert all(r["micros_per_item"] > 0 for r in rows)

    def test_fig14_space(self):
        out = run_experiment("fig14", profile="quick", seed=0)
        rows = out.data["pspace"]
        # At the paper's dataset sizes (210-500 groups, comparable to the
        # kappa0*log m threshold) the robust sampler need not beat exact
        # storage; it must stay within a small constant of it and far
        # below the stream length.  The asymptotic win is asserted by
        # test_thm24_scaling.
        for r in rows:
            assert 0 < r["robust_peak_words"] < 8 * r["exact_peak_words"]

    def test_thm24_scaling(self):
        out = run_experiment("thm24", profile="quick", seed=0)
        rows = out.data["scaling"]
        assert rows[-1]["stream_length"] > rows[0]["stream_length"]
        # Peak space must grow far slower than the stream.
        growth_space = rows[-1]["peak_words"] / rows[0]["peak_words"]
        growth_stream = rows[-1]["stream_length"] / rows[0]["stream_length"]
        assert growth_space < growth_stream

    def test_thm31_general(self):
        out = run_experiment("thm31", profile="quick", seed=0)
        row = out.data["general"][0]
        assert row["n_greedy"] <= row["n_opt"]
        assert 0 < row["min_normalised_probability"]
        assert row["max_normalised_probability"] < 25

    def test_sec5_f0(self):
        out = run_experiment("sec5", profile="quick", seed=0)
        for row in out.data["infinite"]:
            assert row["robust_rel_error"] < 0.5
            # BJKST on raw noisy points massively overcounts.
            assert row["bjkst_on_raw_points"] > 3 * row["groups"]

    def test_fig5_12_distributions_tiny(self):
        out = run_experiment(
            "fig5_12", profile="quick", seed=0, runs=60, names=["Seeds"]
        )
        rows = out.data["distributions"]
        assert {r["dataset"] for r in rows} == {"Seeds", "Seeds-pl"}
        for r in rows:
            assert sum(r["counts"]) == 60

    def test_fig15_deviation_tiny(self):
        out = run_experiment(
            "fig15", profile="quick", seed=0, runs=60, names=["Seeds"]
        )
        for r in out.data["deviation"]:
            assert r["std_dev_nm"] >= 0
            assert r["p_value"] >= 0

    def test_thm41_highdim_tiny(self):
        out = run_experiment(
            "thm41",
            profile="quick",
            seed=0,
            runs=40,
            dims=[8],
            num_groups=10,
        )
        rows = out.data["highdim"]
        assert rows and rows[0]["peak_words"] > 0

    def test_thm27_sliding_tiny(self):
        out = run_experiment(
            "thm27",
            profile="quick",
            seed=0,
            runs=40,
            num_groups=15,
            window=40,
        )
        for row in out.data["uniformity"]:
            assert row["out_of_window_samples"] == 0
        space = out.data["space"]
        assert space[-1]["levels"] >= space[0]["levels"]

    def test_ablations_tiny(self):
        out = run_experiment(
            "ablations", profile="quick", seed=0, runs=60, num_groups=12
        )
        adj = out.data["adj_pruning"]
        assert all(row["speedup"] > 1 for row in adj[1:])
        bias = {row["sampler"]: row for row in out.data["naive_bias"]}
        assert (
            bias["naive reservoir"]["largest_group_overweight"]
            > 2 * bias["robust l0"]["largest_group_overweight"]
        )
