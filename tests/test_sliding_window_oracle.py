"""Property-based oracle tests for the sliding-window hierarchy.

Hypothesis drives random well-separated streams and window sizes; every
query of the hierarchy is checked against a brute-force oracle computed
from the raw window contents.  This is the deepest-risk component of the
reproduction (see DESIGN.md section 3 on the Algorithm 3 repair), so it
gets adversarial coverage beyond the deterministic unit tests.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sliding_window import RobustL0SamplerSW
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow, TimeWindow

# A stream is a list of group ids; group g lives at coordinate 20*g, so
# any alpha in (1, 19) keeps the data well-separated.
STREAMS = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60)
WINDOWS = st.integers(min_value=1, max_value=40)
SEEDS = st.integers(min_value=0, max_value=10_000)


def build_points(groups: list[int], jitter_seed: int) -> list[StreamPoint]:
    rng = random.Random(jitter_seed)
    return [
        StreamPoint((20.0 * g + rng.uniform(0.0, 0.5),), i)
        for i, g in enumerate(groups)
    ]


def window_groups(groups: list[int], w: int) -> set[int]:
    """Oracle: the distinct groups among the last w arrivals."""
    return set(groups[-w:])


class TestSequenceWindowOracle:
    @given(STREAMS, WINDOWS, SEEDS)
    @settings(max_examples=120, deadline=None)
    def test_sample_group_is_in_window(self, groups, w, seed):
        points = build_points(groups, seed)
        sampler = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(w), seed=seed, expected_stream_length=len(points)
        )
        rng = random.Random(seed ^ 0xABCD)
        for i, p in enumerate(points):
            sampler.insert(p)
            sample = sampler.sample(rng)
            live = window_groups(groups[: i + 1], w)
            assert round(sample.vector[0] // 20.0) in live

    @given(STREAMS, WINDOWS, SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_single_tracking_invariant(self, groups, w, seed):
        points = build_points(groups, seed)
        sampler = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(w), seed=seed, expected_stream_length=len(points)
        )
        for p in points:
            sampler.insert(p)
        seen: set[int] = set()
        for level in range(sampler.num_levels):
            for record in sampler.level(level).records():
                group = round(record.representative.vector[0] // 20.0)
                assert group not in seen
                seen.add(group)

    @given(STREAMS, WINDOWS, SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_accept_status_matches_rate(self, groups, w, seed):
        points = build_points(groups, seed)
        sampler = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(w), seed=seed, expected_stream_length=len(points)
        )
        for p in points:
            sampler.insert(p)
        for level in range(sampler.num_levels):
            mask = sampler.level(level).rate_denominator - 1
            for record in sampler.level(level).records():
                assert record.accepted == (record.cell_hash & mask == 0)

    @given(STREAMS, WINDOWS, SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_f0_estimate_never_negative_and_zero_only_when_empty(
        self, groups, w, seed
    ):
        points = build_points(groups, seed)
        sampler = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(w), seed=seed, expected_stream_length=len(points)
        )
        for p in points:
            sampler.insert(p)
        assert sampler.estimate_f0() >= 1.0  # the window is never empty here


class TestTimeWindowOracle:
    @given(
        STREAMS,
        st.integers(min_value=1, max_value=30),
        SEEDS,
    )
    @settings(max_examples=80, deadline=None)
    def test_sample_group_is_in_time_window(self, groups, duration, seed):
        rng = random.Random(seed)
        # Irregular timestamps: strictly increasing with random gaps.
        now = 0.0
        points = []
        for i, g in enumerate(groups):
            now += rng.uniform(0.1, 3.0)
            points.append(
                StreamPoint((20.0 * g + rng.uniform(0.0, 0.5),), i, now)
            )
        sampler = RobustL0SamplerSW(
            1.0,
            1,
            TimeWindow(float(duration)),
            window_capacity=len(points),
            seed=seed,
            expected_stream_length=len(points),
        )
        query_rng = random.Random(seed ^ 0xEF)
        for i, p in enumerate(points):
            sampler.insert(p)
            live = {
                groups[j]
                for j in range(i + 1)
                if points[j].time > p.time - duration
            }
            sample = sampler.sample(query_rng)
            assert round(sample.vector[0] // 20.0) in live
