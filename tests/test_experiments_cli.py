"""Tests for the ``python -m repro.experiments`` entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


class TestMain:
    def test_runs_single_experiment(self, capsys):
        code = main(["thm24", "--profile", "quick", "--seed", "1"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Theorem 2.4" in captured
        assert "finished in" in captured

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["thm24", "--profile", "gigantic"])

    def test_seed_changes_output_data(self):
        from repro.experiments.registry import run_experiment

        a = run_experiment("thm24", profile="quick", seed=1)
        b = run_experiment("thm24", profile="quick", seed=2)
        assert a.data != b.data

    def test_seed_reproducible(self):
        from repro.experiments.registry import run_experiment

        a = run_experiment("thm31", profile="quick", seed=5, runs=30)
        b = run_experiment("thm31", profile="quick", seed=5, runs=30)
        assert a.data == b.data
