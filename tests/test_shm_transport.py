"""Shared-memory transport lifecycle: segments never outlive the executor.

The zero-copy transport creates real kernel objects (``/dev/shm``
segments for the chunk pool and the control block).  These tests prove
the lifecycle claim in :class:`repro.engine.executors._ShmChunkPool`:
every segment is released on ``close()``, on worker crash, on worker
failure, and - via the ``weakref.finalize`` backstop - at interpreter
exit without a ``close()``.  A released segment is one that can no
longer be attached by name.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import subprocess
import sys
from multiprocessing import shared_memory
from pathlib import Path

import pytest

from repro.api import PipelineSpec, build
from repro.distributed.coordinator import DistributedRobustSampler
from repro.engine import state_fingerprint
from repro.engine import executors as executors_module
from repro.engine.executors import (
    DeferredStates,
    ProcessShardExecutor,
    resolve_state,
)
from repro.errors import ExecutorError


def group_stream(n=240, seed=41, groups=8):
    rng = random.Random(seed)
    return [
        (25.0 * rng.randrange(groups) + rng.uniform(0, 0.4),)
        for _ in range(n)
    ]


def segment_names(executor) -> list[str]:
    """Every shm segment the executor owns: pool slots + control block."""
    names = [executor._ctrl.name]
    if executor._pool is not None:
        names.extend(executor._pool.segment_names())
    return names


def assert_all_released(names: list[str]) -> None:
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def make_executor(num_workers=2, num_shards=3, seed=7):
    coordinator = DistributedRobustSampler(
        1.0, 1, num_shards=num_shards, seed=seed
    )
    return coordinator, ProcessShardExecutor(
        coordinator, num_workers=num_workers
    )


class TestSegmentLifecycle:
    def test_close_releases_every_segment(self):
        coordinator, executor = make_executor()
        try:
            for index, chunk in enumerate(
                group_stream(i * 7 + 40, seed=i) for i in range(6)
            ):
                executor.submit(index % coordinator.num_shards, chunk)
            arrivals = list(executor.drain())
            # Worker-settled shards come home as DeferredStates handles.
            assert any(
                isinstance(state, DeferredStates) for _, state in arrivals
            )
            names = segment_names(executor)
            assert len(names) >= 2  # control block + >= 1 pool segment
        finally:
            executor.close()
        assert_all_released(names)

    def test_close_releases_segments_after_worker_sigkill(self):
        coordinator, executor = make_executor(num_workers=2)
        names = None
        try:
            for index in range(4):
                executor.submit(
                    index % coordinator.num_shards, group_stream(seed=index)
                )
            names = segment_names(executor)
            victim = executor._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            with pytest.raises(ExecutorError):
                # Either the liveness check ("died without reporting")
                # or the drain barrier fails - both must leave close()
                # able to reclaim every segment.
                list(executor.drain())
        finally:
            executor.close()
        assert_all_released(names)

    def test_close_releases_segments_after_worker_failure(self):
        coordinator, executor = make_executor(num_workers=1)
        try:
            executor.submit(0, group_stream(seed=3))  # healthy shm chunk
            executor.submit(0, [(None,)])  # poisons the worker via pickle
            with pytest.raises(ExecutorError, match="shard worker failed"):
                list(executor.drain())
            names = segment_names(executor)
        finally:
            executor.close()
        assert_all_released(names)

    def test_interpreter_exit_backstop_unlinks_segments(self):
        """An executor abandoned without close() must not leak segments:
        the ``weakref.finalize`` backstop unlinks them at exit."""
        src = Path(__file__).resolve().parent.parent / "src"
        script = (
            "import json, random, sys\n"
            "from repro.distributed.coordinator import"
            " DistributedRobustSampler\n"
            "from repro.engine.executors import ProcessShardExecutor\n"
            "rng = random.Random(1)\n"
            "chunk = [(25.0 * rng.randrange(8),) for _ in range(200)]\n"
            "coordinator = DistributedRobustSampler(1.0, 1, num_shards=2,"
            " seed=1)\n"
            "executor = ProcessShardExecutor(coordinator, num_workers=1)\n"
            "executor.submit(0, chunk)\n"
            "names = [executor._ctrl.name]\n"
            "if executor._pool is not None:\n"
            "    names += executor._pool.segment_names()\n"
            "print(json.dumps(names))\n"
            "sys.exit(0)  # no close(): the finalizer must clean up\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        names = json.loads(result.stdout.strip().splitlines()[-1])
        assert names
        assert_all_released(names)


class TestSpawnContext:
    def test_fingerprint_matrix_under_forced_spawn(self, monkeypatch):
        """The transport never relies on fork-inherited state: under a
        forced spawn context (the only option on some platforms) the
        executor matrix still lands fingerprint-identical to serial."""
        monkeypatch.setattr(
            executors_module,
            "_mp_context",
            lambda: multiprocessing.get_context("spawn"),
        )
        stream = group_stream(300, seed=19)
        spec = PipelineSpec(
            alpha=1.0,
            dim=1,
            seed=13,
            num_shards=3,
            batch_size=32,
            executor="serial",
        )
        serial = build("batch-pipeline", spec)
        serial.extend(stream)
        for transport in ("auto", "pickle"):
            twin_spec = PipelineSpec(
                alpha=1.0,
                dim=1,
                seed=13,
                num_shards=3,
                batch_size=32,
                executor="process",
                num_workers=2,
                transport=transport,
            )
            with build("batch-pipeline", twin_spec) as twin:
                twin.extend(stream)
                assert state_fingerprint(twin) == state_fingerprint(serial)

    def test_direct_drain_resolves_under_spawn(self, monkeypatch):
        monkeypatch.setattr(
            executors_module,
            "_mp_context",
            lambda: multiprocessing.get_context("spawn"),
        )
        chunks = [group_stream(80, seed=i) for i in range(4)]
        serial = DistributedRobustSampler(1.0, 1, num_shards=2, seed=5)
        for index, chunk in enumerate(chunks):
            serial.route_many(chunk, index % 2)
        parallel = DistributedRobustSampler(1.0, 1, num_shards=2, seed=5)
        executor = ProcessShardExecutor(parallel, num_workers=2)
        try:
            for index, chunk in enumerate(chunks):
                executor.submit(index % 2, chunk)
            for shard_id, state in executor.drain():
                if state is not None:
                    parallel.restore_shard(
                        shard_id, resolve_state(shard_id, state)
                    )
        finally:
            executor.close()
        assert state_fingerprint(parallel) == state_fingerprint(serial)
