"""Tests for repro.core.base: config, candidate store, threshold policy."""

from __future__ import annotations

import random

import pytest

from repro.core.base import (
    CandidateRecord,
    CandidateStore,
    SamplerConfig,
    _ThresholdPolicy,
    coerce_point,
    default_grid_side,
)
from repro.errors import ParameterError
from repro.streams.point import StreamPoint


def make_record(config, vector, index, accepted=True):
    cell = config.grid.cell_of(vector)
    point = StreamPoint(tuple(vector), index)
    return CandidateRecord(
        representative=point,
        cell=cell,
        cell_hash=config.cell_hash(cell),
        adj_hashes=config.adj_hashes(vector),
        accepted=accepted,
        last=point,
    )


class TestDefaultGridSide:
    def test_small_dim_conservative(self):
        assert default_grid_side(1.0, 1) == pytest.approx(1.0)
        assert default_grid_side(1.0, 2) == pytest.approx(2.0**-0.5)

    def test_large_dim_section4(self):
        assert default_grid_side(1.0, 4) == pytest.approx(4.0)
        assert default_grid_side(1.0, 10) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            default_grid_side(0.0, 2)
        with pytest.raises(ParameterError):
            default_grid_side(1.0, 0)


class TestSamplerConfig:
    def test_create_deterministic(self):
        a = SamplerConfig.create(1.0, 2, seed=5)
        b = SamplerConfig.create(1.0, 2, seed=5)
        assert a.grid.offset == b.grid.offset
        assert a.cell_hash((0, 0)) == b.cell_hash((0, 0))

    def test_validation(self):
        with pytest.raises(ParameterError):
            SamplerConfig.create(-1.0, 2)
        with pytest.raises(ParameterError):
            SamplerConfig.create(1.0, 0)

    def test_adj_hashes_contains_own_cell(self):
        config = SamplerConfig.create(1.0, 2, seed=1)
        v = (3.0, 4.0)
        ctx = config.point_context(v)
        assert ctx.cell_hash in config.adj_hashes(v)

    def test_with_adj_idempotent(self):
        config = SamplerConfig.create(1.0, 2, seed=1)
        v = (3.0, 4.0)
        ctx = config.with_adj(v, config.point_context(v))
        again = config.with_adj(v, ctx)
        assert again is ctx

    def test_kwise_mode(self):
        config = SamplerConfig.create(1.0, 2, seed=1, kwise=8)
        assert config.cell_hash((0, 0)) == config.cell_hash((0, 0))


class TestCandidateStore:
    def setup_method(self):
        self.config = SamplerConfig.create(1.0, 2, seed=3)
        self.store = CandidateStore(self.config)

    def test_add_and_find(self):
        record = make_record(self.config, (5.0, 5.0), 0)
        self.store.add(record)
        nearby = (5.3, 5.4)
        ctx = self.config.point_context(nearby)
        assert self.store.find_nearby(nearby, ctx.cell_hash) is record

    def test_find_misses_far_point(self):
        record = make_record(self.config, (5.0, 5.0), 0)
        self.store.add(record)
        far = (9.0, 9.0)
        ctx = self.config.point_context(far)
        assert self.store.find_nearby(far, ctx.cell_hash) is None

    def test_duplicate_key_rejected(self):
        record = make_record(self.config, (5.0, 5.0), 0)
        self.store.add(record)
        with pytest.raises(ParameterError):
            self.store.add(make_record(self.config, (9.0, 9.0), 0))

    def test_counts(self):
        self.store.add(make_record(self.config, (0.0, 0.0), 0, accepted=True))
        self.store.add(make_record(self.config, (9.0, 9.0), 1, accepted=False))
        assert self.store.accepted_count == 1
        assert self.store.rejected_count == 1
        assert len(self.store) == 2

    def test_remove(self):
        record = make_record(self.config, (0.0, 0.0), 0)
        self.store.add(record)
        self.store.remove(record)
        assert len(self.store) == 0
        ctx = self.config.point_context((0.1, 0.1))
        assert self.store.find_nearby((0.1, 0.1), ctx.cell_hash) is None

    def test_contains_identity(self):
        record = make_record(self.config, (0.0, 0.0), 0)
        self.store.add(record)
        assert record in self.store
        clone = make_record(self.config, (0.0, 0.0), 0)
        assert clone not in self.store

    def test_set_accepted_flips_counts(self):
        record = make_record(self.config, (0.0, 0.0), 0, accepted=True)
        self.store.add(record)
        self.store.set_accepted(record, False)
        assert self.store.accepted_count == 0
        assert self.store.rejected_count == 1
        self.store.set_accepted(record, False)  # idempotent
        assert self.store.rejected_count == 1

    def test_resample_respects_definition(self):
        # Add many records; after resampling at rate R, accepted records
        # must be exactly those whose own cell is sampled, rejected those
        # with a sampled adj cell.
        rng = random.Random(0)
        for i in range(200):
            v = (rng.uniform(0, 100), rng.uniform(0, 100))
            record = make_record(self.config, v, i)
            try:
                self.store.add(record)
            except ParameterError:
                pass
        R = 4
        self.store.resample(R)
        mask = R - 1
        for record in self.store.records():
            if record.accepted:
                assert record.cell_hash & mask == 0
            else:
                assert record.cell_hash & mask != 0
                assert any(v & mask == 0 for v in record.adj_hashes)

    def test_space_words_positive(self):
        record = make_record(self.config, (0.0, 0.0), 0)
        self.store.add(record)
        assert self.store.space_words() > 0

    def test_store_space_words_matches_per_record_formula(self):
        # The store inlines CandidateRecord.space_words for speed; the
        # two formulas must never drift apart.
        for i, vector in enumerate([(0.0, 0.0), (9.0, 9.0), (30.0, 0.5)]):
            record = make_record(self.config, vector, i)
            if i == 1:
                record.last = StreamPoint((9.1, 9.0), 7)
            if i == 2:
                record.member = StreamPoint((30.0, 0.6), 8)
            self.store.add(record)
        for track_members in (False, True):
            assert self.store.space_words(
                track_members=track_members
            ) == sum(
                record.space_words(track_members=track_members)
                for record in self.store.records()
            )


class TestCoercePoint:
    def test_passthrough(self):
        p = StreamPoint((1.0,), 5)
        assert coerce_point(p, 99) is p

    def test_wraps_raw(self):
        p = coerce_point((1, 2), 7)
        assert p.vector == (1.0, 2.0)
        assert p.index == 7


class TestThresholdPolicy:
    def test_fixed_capacity(self):
        policy = _ThresholdPolicy(8, fixed=50)
        assert policy.threshold() == 50

    def test_expected_length(self):
        policy = _ThresholdPolicy(2, expected_stream_length=1024)
        assert policy.threshold() == 20  # 2 * log2(1024)

    def test_growing_fallback(self):
        policy = _ThresholdPolicy(2)
        first = policy.threshold()
        for _ in range(10000):
            policy.observe()
        assert policy.threshold() > first

    def test_minimum(self):
        policy = _ThresholdPolicy(0.001, expected_stream_length=4)
        assert policy.threshold() >= 4
