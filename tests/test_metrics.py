"""Tests for repro.metrics: accuracy, trials, timing, space."""

from __future__ import annotations

import random

import pytest

from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.catalog import make_dataset
from repro.metrics.accuracy import (
    chi_square_uniformity,
    deviation_report,
    max_dev_normalized,
    multinomial_noise_floor,
    std_dev_normalized,
)
from repro.metrics.space import dataset_stream_factory, measure_peak_space
from repro.metrics.timing import measure_processing_time, shuffled_stream_factory
from repro.metrics.trials import sampling_distribution


class TestAccuracyFormulas:
    def test_uniform_counts_zero_deviation(self):
        assert std_dev_normalized([10, 10, 10]) == 0.0
        assert max_dev_normalized([10, 10, 10]) == 0.0

    def test_known_values(self):
        # freqs 1/6, 2/6, 3/6; target 1/3.
        assert max_dev_normalized([5, 10, 15]) == pytest.approx(0.5)

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            std_dev_normalized([0, 0])

    def test_noise_floor_formula(self):
        assert multinomial_noise_floor(101, 100) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            multinomial_noise_floor(0, 5)

    def test_chi_square_detects_bias(self):
        _, p_uniform = chi_square_uniformity([100, 105, 95, 100])
        _, p_biased = chi_square_uniformity([400, 0, 0, 0])
        assert p_uniform > 0.01
        assert p_biased < 1e-6

    def test_chi_square_validation(self):
        with pytest.raises(ValueError):
            chi_square_uniformity([5])

    def test_uniform_sampler_matches_floor(self):
        rng = random.Random(0)
        n, runs = 20, 4000
        counts = [0] * n
        for _ in range(runs):
            counts[rng.randrange(n)] += 1
        report = deviation_report(counts)
        assert 0.5 < report.excess_over_floor < 1.6
        assert report.is_consistent_with_uniform()

    def test_report_from_mapping(self):
        report = deviation_report({0: 50, 2: 50}, num_groups=3)
        assert report.num_groups == 3
        assert report.num_runs == 100
        assert not report.is_consistent_with_uniform()

    def test_mapping_requires_num_groups(self):
        with pytest.raises(ValueError):
            deviation_report({0: 5})


class TestTrials:
    def test_distribution_counts_sum_to_runs(self):
        dataset = make_dataset("Seeds", seed=0)
        # Shrink: use a small synthetic stand-in for speed.
        result = sampling_distribution(dataset, runs=3, seed=0)
        assert sum(result.counts) == 3
        assert len(result.counts) == dataset.num_groups
        assert result.dataset == "Seeds"

    def test_runs_validation(self):
        dataset = make_dataset("Seeds", seed=0)
        with pytest.raises(ValueError):
            sampling_distribution(dataset, runs=0)

    def test_frequencies_sum_to_one(self):
        dataset = make_dataset("Seeds", seed=0)
        result = sampling_distribution(dataset, runs=4, seed=1)
        assert sum(result.frequencies) == pytest.approx(1.0)


class TestTimingAndSpace:
    def _dataset(self):
        return make_dataset("Seeds", seed=0)

    def test_timing_result_fields(self):
        dataset = self._dataset()

        def make_sampler(i):
            return RobustL0SamplerIW(
                dataset.alpha, dataset.dim, seed=i,
                expected_stream_length=dataset.num_points,
            )

        result = measure_processing_time(
            make_sampler, shuffled_stream_factory(dataset), passes=1
        )
        assert result.seconds_per_item > 0
        assert result.micros_per_item == pytest.approx(
            result.seconds_per_item * 1e6
        )
        assert result.items_per_pass == dataset.num_points

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            measure_processing_time(lambda i: None, lambda i: [], passes=0)

    def test_space_result_fields(self):
        dataset = self._dataset()

        def make_sampler(i):
            return RobustL0SamplerIW(
                dataset.alpha, dataset.dim, seed=i,
                expected_stream_length=dataset.num_points,
            )

        result = measure_peak_space(
            make_sampler, dataset_stream_factory(dataset), passes=1
        )
        assert result.max_peak_words >= result.mean_final_words > 0
        assert result.mean_peak_words <= result.max_peak_words

    def test_space_validation(self):
        with pytest.raises(ValueError):
            measure_peak_space(lambda i: None, lambda i: [], passes=0)
