"""Tests for the baseline samplers and F0 sketches."""

from __future__ import annotations

import collections
import random

import pytest

from repro.baselines.bjkst import BJKSTSketch
from repro.baselines.exact import ExactDistinctSampler
from repro.baselines.fm import FMSketch, lowest_set_bit
from repro.baselines.hyperloglog import HyperLogLog
from repro.baselines.loglog import LogLogSketch
from repro.baselines.minrank import MinRankL0Sampler
from repro.baselines.naive import NaiveReservoirSampler
from repro.errors import EmptySampleError, ParameterError


class TestNaiveReservoir:
    def test_empty_raises(self):
        with pytest.raises(EmptySampleError):
            NaiveReservoirSampler().sample()

    def test_uniform_over_points(self):
        counts = collections.Counter()
        for seed in range(500):
            sampler = NaiveReservoirSampler(rng=random.Random(seed))
            for i in range(4):
                sampler.insert((float(i),))
            counts[sampler.sample().vector[0]] += 1
        assert all(80 <= counts[float(i)] <= 170 for i in range(4))

    def test_biased_toward_heavy_groups(self):
        """The motivating failure: duplicates skew the sample."""
        heavy = 0
        for seed in range(300):
            sampler = NaiveReservoirSampler(rng=random.Random(seed))
            for _ in range(99):
                sampler.insert((0.0,))
            sampler.insert((100.0,))
            heavy += sampler.sample().vector[0] == 0.0
        assert heavy / 300 > 0.9  # ~99% vs the fair 50%


class TestMinRank:
    def test_uniform_over_distinct_keys(self):
        counts = collections.Counter()
        for seed in range(600):
            sampler = MinRankL0Sampler(seed=seed)
            # Duplicates of value 0.0 must not tilt the sample.
            for v in [0.0, 0.0, 0.0, 0.0, 1.0, 2.0]:
                sampler.insert((v,))
            counts[sampler.sample().vector[0]] += 1
        assert all(130 <= counts[float(v)] <= 270 for v in range(3))

    def test_distinct_seen(self):
        sampler = MinRankL0Sampler(seed=0)
        for v in [0.0, 0.0, 1.0]:
            sampler.insert((v,))
        assert sampler.distinct_seen == 2

    def test_near_duplicates_break_it(self):
        """Near (not exact) duplicates all count as distinct - the paper's
        argument that hashing cannot handle noisy data."""
        sampler = MinRankL0Sampler(seed=1)
        for i in range(10):
            sampler.insert((0.0 + i * 1e-9,))
        assert sampler.distinct_seen == 10

    def test_custom_key_oracle(self):
        sampler = MinRankL0Sampler(key=lambda p: round(p.vector[0]), seed=2)
        for i in range(10):
            sampler.insert((0.0 + i * 1e-9,))
        assert sampler.distinct_seen == 1

    def test_empty_raises(self):
        with pytest.raises(EmptySampleError):
            MinRankL0Sampler().sample()


class TestExactSampler:
    def test_groups_counted_exactly(self):
        sampler = ExactDistinctSampler(alpha=0.5, dim=1, seed=0)
        for v in [0.0, 0.2, 5.0, 5.1, 10.0]:
            sampler.insert((v,))
        assert sampler.num_groups == 3

    def test_representative_is_first(self):
        sampler = ExactDistinctSampler(alpha=0.5, dim=1, seed=0)
        for v in [5.2, 5.0, 0.0]:
            sampler.insert((v,))
        reps = [p.vector[0] for p in sampler.representatives()]
        assert reps == [5.2, 0.0]

    def test_high_dim_fallback_path(self):
        sampler = ExactDistinctSampler(alpha=0.5, dim=8, seed=1)
        rng = random.Random(0)
        for _ in range(30):
            sampler.insert(tuple(rng.uniform(0, 20) for _ in range(8)))
        assert 1 <= sampler.num_groups <= 30

    def test_space_linear_in_groups(self):
        sampler = ExactDistinctSampler(alpha=0.5, dim=1, seed=2)
        for g in range(50):
            sampler.insert((10.0 * g,))
        assert sampler.space_words() >= 50 * 3

    def test_empty_raises(self):
        with pytest.raises(EmptySampleError):
            ExactDistinctSampler(alpha=1.0, dim=1).sample()

    def test_alpha_validation(self):
        with pytest.raises(ParameterError):
            ExactDistinctSampler(alpha=0.0, dim=1)


class TestLowestSetBit:
    def test_values(self):
        assert lowest_set_bit(1) == 0
        assert lowest_set_bit(8) == 3
        assert lowest_set_bit(12) == 2
        assert lowest_set_bit(0) == 64


class TestF0Sketches:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FMSketch(copies=32, seed=1),
            lambda: LogLogSketch(bucket_bits=8, seed=1),
            lambda: HyperLogLog(bucket_bits=10, seed=1),
            lambda: BJKSTSketch(epsilon=0.15, seed=1),
        ],
        ids=["fm", "loglog", "hll", "bjkst"],
    )
    def test_estimates_within_factor_two(self, factory):
        sketch = factory()
        truth = 5000
        sketch.extend(range(truth))
        assert truth / 2 <= sketch.estimate() <= truth * 2

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FMSketch(copies=16, seed=2),
            lambda: LogLogSketch(bucket_bits=6, seed=2),
            lambda: HyperLogLog(bucket_bits=8, seed=2),
            lambda: BJKSTSketch(epsilon=0.2, seed=2),
        ],
        ids=["fm", "loglog", "hll", "bjkst"],
    )
    def test_duplicates_are_free(self, factory):
        a, b = factory(), factory()
        a.extend(range(500))
        b.extend(list(range(500)) * 5)
        assert a.estimate() == b.estimate()

    def test_hll_small_range_correction(self):
        hll = HyperLogLog(bucket_bits=10, seed=3)
        hll.extend(range(30))
        assert 15 <= hll.estimate() <= 60

    def test_bjkst_level_grows(self):
        sketch = BJKSTSketch(epsilon=0.5, seed=4)
        sketch.extend(range(10000))
        assert sketch.level > 0
        assert len(sketch._kept) <= sketch.capacity

    def test_validation(self):
        with pytest.raises(ParameterError):
            FMSketch(copies=0)
        with pytest.raises(ParameterError):
            LogLogSketch(bucket_bits=1)
        with pytest.raises(ParameterError):
            HyperLogLog(bucket_bits=2)
        with pytest.raises(ParameterError):
            BJKSTSketch(epsilon=2.0)

    def test_space_words(self):
        assert FMSketch(copies=8).space_words() == 9
        assert LogLogSketch(bucket_bits=4).space_words() == 17
        assert HyperLogLog(bucket_bits=4).space_words() == 17
        assert BJKSTSketch().space_words() >= 2
