"""Property-based differential harness for the batch-ingestion contract.

Hypothesis drives adversarial streams - duplicate bursts, equal
timestamps, hostile batch layouts with interleaved empty and singleton
batches - against **every** registry key, and checks the two promises
the engine makes (see :mod:`repro.engine`):

* *batch layout invariance*: ``process_many`` over any chunking leaves a
  summary ``state_fingerprint``-identical to per-point ingestion;
* *checkpoint transparency*: a mid-stream ``to_state`` -> ``from_state``
  round-trip through JSON, followed by the rest of the stream, is
  fingerprint-identical to the uninterrupted run.

Failures shrink to a minimal stream/layout automatically (Hypothesis),
which is the fastest way to localise a hot-path divergence.

The module also hosts the *incremental space-accounting oracle*: the
O(1)/O(levels) ``space_words`` counters maintained by the hot paths must
equal a from-scratch ``recount_space_words`` recomputation after every
single operation, and the sliding hierarchy's cached per-level word
counters must match their levels' records exactly.

``batch-pipeline`` is exempt from layout invariance *by design*: it
deals chunks round-robin to shards, so the batch size determines which
shard sees which point (its differential oracle lives in
``tests/test_distributed.py``).  It still participates in the
checkpoint-transparency property (chunk-aligned, as documented).
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import available, build, entry
from repro.core.base import CandidateStore, SamplerConfig
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.sliding_window import RobustL0SamplerSW
from repro.engine.batching import chunked
from repro.engine.equivalence import state_fingerprint
from repro.persist import summary_from_state, summary_to_state
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow, TimeWindow

from stream_generators import noisy_grid_stream

#: Spec kwargs per registry key.  Windows and copy counts are kept small
#: so a hypothesis example stays cheap; every key of the registry must
#: appear here (enforced by test_property_matrix_covers_registry).
PROPERTY_SPECS = {
    "l0-infinite": dict(alpha=1.0, dim=1, seed=5),
    "l0-sliding": dict(alpha=1.0, dim=1, seed=5, window_size=64),
    "ksample": dict(alpha=1.0, dim=1, seed=5, k=2),
    "f0-infinite": dict(alpha=1.0, dim=1, seed=5, copies=2, epsilon=0.5),
    "f0-sliding": dict(alpha=1.0, dim=1, seed=5, window_size=64, copies=2),
    "heavy-hitters": dict(alpha=1.0, dim=1, seed=5, epsilon=0.2),
    "batch-pipeline": dict(alpha=1.0, dim=1, seed=5, num_shards=2, batch_size=8),
    "exact": dict(alpha=1.0, dim=1, seed=5),
    "naive-reservoir": dict(seed=5),
    "minrank": dict(seed=5),
    "fm": dict(seed=5),
    "loglog": dict(seed=5),
    "hyperloglog": dict(seed=5),
    "bjkst": dict(seed=5),
}

#: Keys whose fingerprint is chunking-dependent by design (see module
#: docstring); they skip the layout-invariance property only.
LAYOUT_EXEMPT = {"batch-pipeline"}

#: Adversarial stream shape: bursts of near-duplicates.  Each element is
#: (group id, burst length); group g lives at coordinate 25*g + jitter.
#: 41 groups against the 64-point windows above gives enough distinct
#: in-window groups for level-0 overflows on long draws.
BURSTS = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 3)),
    min_size=1,
    max_size=40,
)
#: Hostile chunkings: singletons, tiny primes, a power of two, and one
#: chunk bigger than any generated stream.
BATCH_SIZES = st.sampled_from([1, 2, 3, 7, 16, 64, 10_000])
#: How often to interleave an empty batch between chunks.
EMPTY_EVERY = st.integers(1, 3)
SEEDS = st.integers(0, 10_000)


def burst_points(bursts, jitter_seed):
    """Expand (group, length) bursts into raw 1-D near-duplicate tuples."""
    rng = random.Random(jitter_seed)
    points = []
    for group, length in bursts:
        points.extend(
            (25.0 * group + rng.uniform(0.0, 0.4),) for _ in range(length)
        )
    return points


def feed_per_point(summary, points):
    """Per-point reference ingestion (singleton batches when there is no
    ``insert``, which is itself the smallest hostile layout)."""
    insert = getattr(summary, "insert", None)
    if insert is not None:
        for point in points:
            insert(point)
    else:
        for point in points:
            summary.process_many([point])


def feed_hostile(summary, points, batch_size, empty_every):
    """Batched ingestion with empty batches interleaved between chunks."""
    for i, chunk in enumerate(chunked(points, batch_size)):
        if i % empty_every == 0:
            summary.process_many([])
        summary.process_many(chunk)
    summary.process_many([])


def build_twin(key):
    info = entry(key)
    return build(key, info.spec_cls(**PROPERTY_SPECS[key]))


class TestRegistryWideProperties:
    def test_property_matrix_covers_registry(self):
        assert sorted(PROPERTY_SPECS) == available()

    @pytest.mark.parametrize(
        "key", sorted(set(PROPERTY_SPECS) - LAYOUT_EXEMPT)
    )
    @given(bursts=BURSTS, seed=SEEDS, batch_size=BATCH_SIZES, empty_every=EMPTY_EVERY)
    @settings(max_examples=12, deadline=None)
    def test_batch_layout_invariance(
        self, key, bursts, seed, batch_size, empty_every
    ):
        points = burst_points(bursts, seed)
        per = build_twin(key)
        feed_per_point(per, points)
        bat = build_twin(key)
        feed_hostile(bat, points, batch_size, empty_every)
        assert state_fingerprint(per) == state_fingerprint(bat)

    @pytest.mark.parametrize("key", sorted(PROPERTY_SPECS))
    @given(
        bursts=BURSTS,
        seed=SEEDS,
        split_num=st.integers(0, 100),
        batch_size=BATCH_SIZES,
    )
    @settings(max_examples=10, deadline=None)
    def test_checkpoint_resume_transparency(
        self, key, bursts, seed, split_num, batch_size
    ):
        points = burst_points(bursts, seed)
        split = split_num * len(points) // 101
        prefix, suffix = points[:split], points[split:]

        full = build_twin(key)
        interrupted = build_twin(key)
        for summary in (full, interrupted):
            # Same call boundaries on both sides: the pipeline's round-
            # robin chunk dealing must line up for the comparison to be
            # meaningful (checkpoints are chunk-aligned by contract).
            for chunk in chunked(prefix, batch_size):
                summary.process_many(chunk)
        envelope = json.loads(json.dumps(summary_to_state(interrupted)))
        resumed = summary_from_state(envelope)
        assert state_fingerprint(resumed) == state_fingerprint(interrupted)
        for summary in (full, resumed):
            for chunk in chunked(suffix, batch_size):
                summary.process_many(chunk)
        assert state_fingerprint(full) == state_fingerprint(resumed)


class TestExecutorEquivalenceProperties:
    """Tentpole property: *where* shard work runs (serial / thread /
    process / remote executors) is never observable in pipeline state,
    for any stream, chunk layout, or chunk-aligned checkpoint position.
    The remote flavour runs its zero-configuration mode here (private
    memory backend, one in-process worker thread) so the property stays
    fast; the cross-process story is ``tests/test_remote_executor.py``."""

    @staticmethod
    def _pipeline(executor):
        from repro.api import PipelineSpec

        return build(
            "batch-pipeline",
            PipelineSpec(
                alpha=1.0,
                dim=1,
                seed=5,
                num_shards=2,
                batch_size=8,
                executor=executor,
                num_workers=2,
            ),
        )

    @pytest.mark.parametrize("executor", ["thread", "process", "remote"])
    @given(
        bursts=BURSTS,
        seed=SEEDS,
        batch_size=BATCH_SIZES,
        split_num=st.integers(0, 100),
    )
    @settings(max_examples=5, deadline=None)
    def test_executor_fingerprint_matches_serial(
        self, executor, bursts, seed, batch_size, split_num
    ):
        points = burst_points(bursts, seed)
        split = split_num * len(points) // 101

        # Same call boundaries on both sides: the round-robin dealing is
        # a function of the chunk sequence, so the serial twin must see
        # the prefix/suffix cut exactly like the parallel one.
        serial = self._pipeline("serial")
        for part in (points[:split], points[split:]):
            for chunk in chunked(part, batch_size):
                serial.process_many(chunk)

        parallel = self._pipeline(executor)
        resumed = None
        try:
            for chunk in chunked(points[:split], batch_size):
                parallel.process_many(chunk)
            # Mid-stream, chunk-aligned checkpoint under the parallel
            # executor; the resume restarts workers lazily.
            envelope = json.loads(json.dumps(summary_to_state(parallel)))
            resumed = summary_from_state(envelope)
            for chunk in chunked(points[split:], batch_size):
                resumed.process_many(chunk)
            assert state_fingerprint(resumed) == state_fingerprint(serial)
        finally:
            parallel.close()
            if resumed is not None:
                resumed.close()


class TestCascadeProperties:
    """Split/Merge coverage: ``kappa0 = 1`` drops the accept threshold so
    nearly every drawn stream forces level-0 overflows and promotion
    cascades across batch boundaries."""

    @given(
        bursts=BURSTS,
        seed=SEEDS,
        batch_size=BATCH_SIZES,
        empty_every=EMPTY_EVERY,
    )
    @settings(max_examples=40, deadline=None)
    def test_cascades_are_layout_and_checkpoint_invariant(
        self, bursts, seed, batch_size, empty_every
    ):
        points = burst_points(bursts, seed)

        def make():
            return RobustL0SamplerSW(
                1.0, 1, SequenceWindow(32), seed=seed, kappa0=1.0
            )

        per = make()
        for point in points:
            per.insert(point)
        bat = make()
        feed_hostile(bat, points, batch_size, empty_every)
        assert state_fingerprint(per) == state_fingerprint(bat)
        assert per.space_words() == per.recount_space_words()

        envelope = json.loads(json.dumps(summary_to_state(per)))
        resumed = summary_from_state(envelope)
        assert state_fingerprint(resumed) == state_fingerprint(per)

    def test_cascade_strategy_actually_cascades(self):
        # Meta-test: the strategy bounds above must keep exercising
        # promotions, or the property silently loses its teeth.
        rng = random.Random(0)
        deepest = 0
        for trial in range(20):
            bursts = [
                (rng.randint(0, 40), rng.randint(1, 3))
                for _ in range(rng.randint(5, 40))
            ]
            sampler = RobustL0SamplerSW(
                1.0, 1, SequenceWindow(32), seed=trial, kappa0=1.0
            )
            for point in burst_points(bursts, trial):
                sampler.insert(point)
            deepest = max(deepest, sampler.deepest_active_level() or 0)
        assert deepest > 0


class TestSlidingTimeWindowProperties:
    """Time-window adversaries: equal timestamps and irregular gaps."""

    @given(
        bursts=BURSTS,
        seed=SEEDS,
        duration=st.integers(1, 20),
        batch_size=BATCH_SIZES,
        empty_every=EMPTY_EVERY,
    )
    @settings(max_examples=25, deadline=None)
    def test_time_window_layout_invariance(
        self, bursts, seed, duration, batch_size, empty_every
    ):
        rng = random.Random(seed ^ 0x7777)
        vectors = burst_points(bursts, seed)
        now = 0.0
        points = []
        for i, vector in enumerate(vectors):
            # Zero gaps (simultaneous arrivals) are the adversarial case
            # for expiry tie-breaking.
            now += rng.choice([0.0, 0.0, 0.5, 3.0])
            points.append(StreamPoint(vector, i, now))

        def make():
            return RobustL0SamplerSW(
                1.0,
                1,
                TimeWindow(float(duration)),
                window_capacity=max(len(points), 2),
                seed=seed,
            )

        per = make()
        for p in points:
            per.insert(p)
        bat = make()
        feed_hostile(bat, points, batch_size, empty_every)
        assert state_fingerprint(per) == state_fingerprint(bat)

        envelope = json.loads(json.dumps(summary_to_state(per)))
        resumed = summary_from_state(envelope)
        assert state_fingerprint(resumed) == state_fingerprint(per)


class TestVectorisedGeometryProperties:
    """The vectorised chunk-geometry path (numpy kernels) must be
    bit-equivalent to the scalar geometry for any stream and chunking -
    including cell-boundary adversaries, where a 1-ulp divergence in a
    floor division or an adjacency cost would flip a record's state."""

    @given(
        bursts=BURSTS,
        seed=SEEDS,
        batch_size=BATCH_SIZES,
        scale=st.sampled_from([1.0, 0.25, 7.0]),
    )
    @settings(max_examples=15, deadline=None)
    def test_vectorised_matches_scalar_batch_path(
        self, bursts, seed, batch_size, scale
    ):
        from repro.engine.batching import (
            set_vectorized_geometry,
            vectorized_geometry_enabled,
        )

        points = [(x * scale,) for (x,) in burst_points(bursts, seed)]

        def make():
            return RobustL0SamplerIW(1.0, 1, seed=seed)

        if not vectorized_geometry_enabled():  # pragma: no cover
            pytest.skip("numpy unavailable")
        vector = make()
        feed_hostile(vector, points, batch_size, 2)
        previous = set_vectorized_geometry(False)
        try:
            scalar = make()
            feed_hostile(scalar, points, batch_size, 2)
        finally:
            set_vectorized_geometry(previous)
        per = make()
        feed_per_point(per, points)
        assert state_fingerprint(vector) == state_fingerprint(scalar)
        assert state_fingerprint(vector) == state_fingerprint(per)

    @given(
        bursts=BURSTS,
        seed=SEEDS,
        batch_size=BATCH_SIZES,
        dim=st.sampled_from([3, 5]),
    )
    @settings(max_examples=10, deadline=None)
    def test_high_dim_probe_layout_invariance(
        self, bursts, seed, batch_size, dim
    ):
        # The dim > 2 ignore filter (sampled-cell probe) under hostile
        # layouts: group coordinates replicated across axes keeps points
        # near shared cell faces.
        rng = random.Random(seed ^ 0x9999)
        points = [
            tuple(x + rng.uniform(0.0, 0.4) for _ in range(dim))
            for (x,) in burst_points(bursts, seed)
        ]
        per = RobustL0SamplerIW(1.0, dim, seed=seed)
        feed_per_point(per, points)
        bat = RobustL0SamplerIW(1.0, dim, seed=seed)
        feed_hostile(bat, points, batch_size, 2)
        assert state_fingerprint(per) == state_fingerprint(bat)


class TestSpaceAccountingOracle:
    """The incremental counters must equal a from-scratch recount after
    every single operation (satellite: ``recount_space_words`` oracle)."""

    @staticmethod
    def _assert_sliding_space(sampler: RobustL0SamplerSW) -> None:
        assert sampler.space_words() == sampler.recount_space_words()
        for index, level_map in enumerate(sampler._level_records):
            expected = sum(
                CandidateStore.record_words(r) for r in level_map.values()
            )
            assert sampler._level_words[index] == expected, (
                f"level {index} cached words {sampler._level_words[index]} "
                f"!= recount {expected}"
            )
            accepted = sum(1 for r in level_map.values() if r.accepted)
            assert sampler._level_accepted[index] == accepted
        store = sampler._store
        assert store.space_words() == store.recount_space_words()

    @given(bursts=BURSTS, seed=SEEDS, window=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_sliding_invariant_after_every_insert(self, bursts, seed, window):
        points = burst_points(bursts, seed)
        sampler = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(window), seed=seed
        )
        for point in points:
            sampler.insert(point)
            self._assert_sliding_space(sampler)
        # ... and across queries (they evict) and a checkpoint round-trip.
        sampler.estimate_f0()
        self._assert_sliding_space(sampler)
        restored = RobustL0SamplerSW.from_state(
            json.loads(json.dumps(sampler.to_state()))
        )
        self._assert_sliding_space(restored)

    @given(
        bursts=BURSTS,
        seed=SEEDS,
        window=st.integers(1, 30),
        batch_size=BATCH_SIZES,
    )
    @settings(max_examples=20, deadline=None)
    def test_sliding_invariant_at_batch_boundaries(
        self, bursts, seed, window, batch_size
    ):
        points = burst_points(bursts, seed)
        sampler = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(window), seed=seed
        )
        for chunk in chunked(points, batch_size):
            sampler.process_many(chunk)
            self._assert_sliding_space(sampler)

    @given(bursts=BURSTS, seed=SEEDS, track=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_infinite_window_invariant(self, bursts, seed, track):
        points = burst_points(bursts, seed)
        sampler = RobustL0SamplerIW(
            1.0, 1, seed=seed, track_members=track
        )
        for point in points:
            sampler.insert(point)
            assert sampler.space_words() == sampler.recount_space_words()

    @given(bursts=BURSTS, seed=SEEDS, rate=st.sampled_from([1, 2, 4]))
    @settings(max_examples=20, deadline=None)
    def test_fixed_rate_invariant(self, bursts, seed, rate):
        config = SamplerConfig.create(1.0, 1, seed=seed)
        sampler = FixedRateSlidingSampler(config, rate, SequenceWindow(16))
        for i, vector in enumerate(burst_points(bursts, seed)):
            sampler.insert(StreamPoint(vector, i))
            assert sampler.space_words() == sampler.recount_space_words()


class TestPeakSpaceRegression:
    """Satellite: peak tracking goes through the single ``_note_space``
    site on the same cadence in both paths, so per-point and batched
    ingestion must report identical ``peak_space_words``."""

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 10_000])
    def test_sliding_peak_identical_across_paths(self, batch_size):
        points = noisy_grid_stream(3000, 400, seed=batch_size)
        per = RobustL0SamplerSW(1.0, 2, SequenceWindow(300), seed=11)
        for point in points:
            per.insert(point)
        bat = RobustL0SamplerSW(1.0, 2, SequenceWindow(300), seed=11)
        for chunk in chunked(points, batch_size):
            bat.process_many(chunk)
        assert per.peak_space_words > 0
        assert per.peak_space_words == bat.peak_space_words

    def test_peak_survives_checkpoint(self):
        points = noisy_grid_stream(1000, 100, seed=3)
        sampler = RobustL0SamplerSW(1.0, 2, SequenceWindow(200), seed=3)
        sampler.process_many(points)
        restored = RobustL0SamplerSW.from_state(
            json.loads(json.dumps(sampler.to_state()))
        )
        assert restored.peak_space_words == sampler.peak_space_words


def _assert_no_slot_leak(state) -> None:
    """The slot pool is derived state: no checkpoint may carry it."""
    if isinstance(state, dict):
        for key, value in state.items():
            assert key not in {"slot", "slots", "free", "free_list"}, (
                f"slot-pool key {key!r} leaked into a checkpoint"
            )
            _assert_no_slot_leak(value)
    elif isinstance(state, (list, tuple)):
        for value in state:
            _assert_no_slot_leak(value)


class TestSlotPoolProperties:
    """Tentpole invariants of the array-backed candidate store.

    * *Checkpoint purity*: slot indices, generation stamps and the free
      list are derived state - fingerprints and checkpoints of a pooled
      store must equal what the pre-pool layout produced, which is
      exactly what a JSON round-trip (pool rebuilt from scratch) checks.
    * *Free-list integrity*: after **every** ``add``/``remove`` on any
      live store, the pool must pass :meth:`CandidateStore.
      check_slot_integrity` - unique live slots, exact cached words,
      clean free slots, conservation of pool size.
    """

    #: Registry keys whose summaries are built on CandidateStore.
    STORE_KEYS = sorted(
        set(PROPERTY_SPECS)
        - {
            "exact",
            "naive-reservoir",
            "minrank",
            "fm",
            "loglog",
            "hyperloglog",
            "bjkst",
        }
    )

    @pytest.mark.parametrize("key", STORE_KEYS)
    @given(bursts=BURSTS, seed=SEEDS, batch_size=BATCH_SIZES)
    @settings(max_examples=8, deadline=None)
    def test_pooled_fingerprints_match_pre_pool_layout(
        self, key, bursts, seed, batch_size
    ):
        points = burst_points(bursts, seed)
        summary = build_twin(key)
        for chunk in chunked(points, batch_size):
            summary.process_many(chunk)
        envelope = summary_to_state(summary)
        _assert_no_slot_leak(envelope)
        # Restoring rebuilds every slot pool from scratch; equality of
        # fingerprints proves the pool never shapes observable state.
        restored = summary_from_state(json.loads(json.dumps(envelope)))
        assert state_fingerprint(restored) == state_fingerprint(summary)
        assert summary_to_state(restored) == envelope

    @pytest.mark.parametrize("key", STORE_KEYS)
    @given(bursts=BURSTS, seed=SEEDS, batch_size=BATCH_SIZES)
    @settings(max_examples=6, deadline=None)
    def test_slot_integrity_after_every_store_operation(
        self, key, bursts, seed, batch_size
    ):
        original_add = CandidateStore.add
        original_remove = CandidateStore.remove

        def checked_add(self, record, *args, **kwargs):
            result = original_add(self, record, *args, **kwargs)
            self.check_slot_integrity()
            return result

        def checked_remove(self, record, *args, **kwargs):
            result = original_remove(self, record, *args, **kwargs)
            self.check_slot_integrity()
            return result

        CandidateStore.add = checked_add
        CandidateStore.remove = checked_remove
        try:
            points = burst_points(bursts, seed)
            summary = build_twin(key)
            for chunk in chunked(points, batch_size):
                summary.process_many(chunk)
        finally:
            CandidateStore.add = original_add
            CandidateStore.remove = original_remove

    @given(bursts=BURSTS, seed=SEEDS, window=st.integers(1, 30))
    @settings(max_examples=15, deadline=None)
    def test_sliding_slot_integrity_per_point_and_queries(
        self, bursts, seed, window
    ):
        # The heaviest slot churn: sliding eviction recycles slots
        # constantly.  Check the pool after every point and query.
        points = burst_points(bursts, seed)
        sampler = RobustL0SamplerSW(1.0, 1, SequenceWindow(window), seed=seed)
        for point in points:
            sampler.insert(point)
            sampler._store.check_slot_integrity()
        sampler.estimate_f0()
        sampler._store.check_slot_integrity()
        restored = RobustL0SamplerSW.from_state(
            json.loads(json.dumps(sampler.to_state()))
        )
        restored._store.check_slot_integrity()
        assert state_fingerprint(restored) == state_fingerprint(sampler)
