"""The documentation system is part of the contract surface.

``docs/ARCHITECTURE.md`` and ``docs/ADDING_A_SUMMARY.md`` are
load-bearing (they document the three invariants and the extension
recipe), so this module keeps them from rotting: intra-repo links must
resolve (same checker the CI docs job runs), the README must link both
guides, the architecture page must only point at test files that exist,
and the README registry table must stay in sync with the live registry.
"""

from __future__ import annotations

import pathlib
import re
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_docs_links  # noqa: E402  (scripts/ is not a package)

DOCS = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "ARCHITECTURE.md",
    REPO_ROOT / "docs" / "ADDING_A_SUMMARY.md",
]


class TestDocsExist:
    @pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
    def test_exists_and_nonempty(self, path):
        assert path.is_file()
        assert len(path.read_text(encoding="utf-8")) > 500

    def test_readme_links_both_guides(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/ADDING_A_SUMMARY.md" in readme


class TestIntraRepoLinks:
    def test_all_default_targets_resolve(self):
        failures = []
        for path in check_docs_links.default_targets(REPO_ROOT):
            failures.extend(check_docs_links.check_file(path, REPO_ROOT))
        assert not failures, "\n".join(failures)

    def test_checker_catches_broken_file_link(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [gone](no-such-file.md)\n", encoding="utf-8")
        failures = check_docs_links.check_file(page, tmp_path)
        assert len(failures) == 1 and "no-such-file.md" in failures[0]

    def test_checker_catches_broken_anchor(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "# Real heading\n\nsee [gone](#not-a-heading)\n",
            encoding="utf-8",
        )
        failures = check_docs_links.check_file(page, tmp_path)
        assert len(failures) == 1 and "not-a-heading" in failures[0]
        page.write_text(
            "# Real heading\n\nsee [ok](#real-heading)\n", encoding="utf-8"
        )
        assert check_docs_links.check_file(page, tmp_path) == []


class TestDocsMatchCode:
    def test_architecture_test_pointers_exist(self):
        # Every tests/... file the architecture page points at must
        # exist - the invariants' enforcement pointers cannot dangle.
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        pointers = set(re.findall(r"tests/\w+\.py", text))
        assert len(pointers) >= 4
        for pointer in pointers:
            assert (REPO_ROOT / pointer).is_file(), pointer

    def test_adding_a_summary_table_names_real_tables(self):
        # The guide's matrix tables must name dicts that really exist in
        # the named test modules (they are asserted registry-complete
        # there, which is what the guide promises).
        guide = (REPO_ROOT / "docs" / "ADDING_A_SUMMARY.md").read_text(
            encoding="utf-8"
        )
        for table, module in [
            ("CONTRACT_SPECS", "test_api.py"),
            ("RESUME_SPECS", "test_persist.py"),
            ("PROPERTY_SPECS", "test_property_equivalence.py"),
        ]:
            assert table in guide
            module_text = (REPO_ROOT / "tests" / module).read_text(
                encoding="utf-8"
            )
            assert f"{table} = {{" in module_text, (table, module)

    def test_architecture_documents_hot_path(self):
        # The slot/generation scheme and the shared-geometry cache
        # invariant are load-bearing perf architecture: the sections
        # must exist and name machinery that really exists in the code.
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        assert "slot/generation scheme" in text
        assert "## The shared-geometry cache invariant" in text
        base_source = (
            REPO_ROOT / "src" / "repro" / "core" / "base.py"
        ).read_text(encoding="utf-8")
        for name in (
            "_slot_record",
            "_slot_tb",
            "_slot_words",
            "check_slot_integrity",
        ):
            assert name in text
            assert name in base_source
        geometry_source = (
            REPO_ROOT / "src" / "repro" / "core" / "chunk_geometry.py"
        ).read_text(encoding="utf-8")
        for name in (
            "valid_for",
            "feed_copies_shared",
            "source_vectors",
            "pure_coords",
        ):
            assert name in text
            assert name in geometry_source
        kernels_source = (
            REPO_ROOT / "src" / "repro" / "geometry" / "kernels.py"
        ).read_text(encoding="utf-8")
        assert "low_dim_ignore_probe" in text
        assert "def low_dim_ignore_probe" in kernels_source

    def test_readme_registry_table_matches_live_registry(self):
        from repro.api import available, entry

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for key in available():
            assert f"`{key}`" in readme, (
                f"registry key {key!r} missing from the README table"
            )
            assert entry(key).spec_cls.__name__ in readme

    def test_architecture_documents_serving_layer(self):
        # The serving-layer section must exist, point at the concurrency
        # equivalence suite, and name only real routes.
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        assert "## Serving layer" in text
        assert "tests/test_service.py" in text
        from repro.service.app import SummaryService

        source = pathlib.Path(
            sys.modules[SummaryService.__module__].__file__
        ).read_text(encoding="utf-8")
        for route in ("ingest", "query", "checkpoint", "stream"):
            assert route in text
            assert route in source

    def test_readme_serving_quickstart_is_honest(self):
        # The README quickstart must name the real entry points and the
        # example it promises.
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "repro.service" in readme
        assert "ServiceSpec" in readme and "create_app" in readme
        assert "ASGITestClient" in readme
        assert "repro.cli serve" in readme
        assert "examples/multi_tenant.py" in readme
        assert (REPO_ROOT / "examples" / "multi_tenant.py").is_file()
        import repro.service as service

        for name in ("ServiceSpec", "create_app"):
            assert hasattr(service, name)

    def test_architecture_documents_state_backends(self):
        # The state-backends section must exist, document the CAS
        # contract and the crash-safety invariant, name every real
        # backend flavour, and point at the suites that enforce it.
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        assert "## State backends" in text
        assert "compare_and_swap" in text
        assert "CASConflictError" in text
        # The crash-safety invariant (tolerating markdown line wraps).
        assert "complete old value" in text and "torn mix" in text
        for pointer in ("tests/test_backends.py", "tests/test_resumable.py"):
            assert pointer in text
            assert (REPO_ROOT / pointer).is_file(), pointer
        from repro.backends import BACKEND_NAMES, StateBackend

        for flavour in BACKEND_NAMES:
            assert f"`{flavour}`" in text, (
                f"backend flavour {flavour!r} missing from the docs"
            )
        # The documented surface is the real one.
        for method in ("put", "get_versioned", "compare_and_swap", "count"):
            assert hasattr(StateBackend, method)

    def test_readme_documents_state_backends(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "StateBackend" in readme
        assert "repro.backends" in readme
        assert "--backend" in readme
        assert "repro[redis]" in readme
        import repro.backends as backends

        for name in ("StateBackend", "make_backend", "BACKEND_NAMES"):
            assert hasattr(backends, name)
        from repro.engine import run_resumable  # noqa: F401  (README names it)

    def test_readme_documents_executor_options(self):
        from repro.engine.executors import EXECUTOR_NAMES

        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for name in EXECUTOR_NAMES:
            assert f"`{name}`" in readme, (
                f"executor {name!r} missing from the README"
            )

    def test_architecture_documents_remote_workers(self):
        # The remote-workers section must exist, document the lease /
        # heartbeat / CAS-fence protocol, and point at the chaos suite
        # that enforces it.
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        assert "#### Remote workers" in text
        for keyword in ("lease", "heartbeat", "CAS fence", "epoch"):
            assert keyword in text, (
                f"remote-worker keyword {keyword!r} missing from the docs"
            )
        pointer = "tests/test_remote_executor.py"
        assert pointer in text
        assert (REPO_ROOT / pointer).is_file()
        # The documented surface is the real one.
        from repro.backends.lease import acquire_lease, renew_lease  # noqa: F401
        from repro.engine.remote_worker import main, run_worker  # noqa: F401

    def test_readme_documents_remote_workers(self):
        # The README quickstart must name the real worker entry points
        # and the spec knobs it shows.
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "repro.engine.remote_worker" in readme
        assert "repro.cli worker" in readme
        for knob in ("queue_backend", "queue_path", "queue_key"):
            assert knob in readme, (
                f"remote spec knob {knob!r} missing from the README"
            )
        import dataclasses

        from repro.api import PipelineSpec

        fields = {f.name for f in dataclasses.fields(PipelineSpec)}
        for knob in ("queue_backend", "queue_path", "queue_key"):
            assert knob in fields
