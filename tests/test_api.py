"""The unified summary API: specs, registry, and the Summary protocol.

The heart of this module is the *generic contract test*: every key in
the registry must pass the same sequence - build from a spec,
batch-ingest, query, checkpoint round-trip, and merge where supported -
through the protocol surface alone, with no per-class wiring.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro.api import (
    F0InfiniteSpec,
    HeavyHittersSpec,
    KSampleSpec,
    L0InfiniteSpec,
    L0SlidingSpec,
    Summary,
    available,
    build,
    entries,
    entry,
    register_summary,
    spec_class,
    spec_from_state,
)
from repro.engine import state_fingerprint
from repro.errors import (
    MergeUnsupportedError,
    ParameterError,
    ReproError,
)
from repro.persist import summary_from_state, summary_to_state

#: Spec kwargs per registry key for the generic contract run.
CONTRACT_SPECS = {
    "l0-infinite": dict(alpha=1.0, dim=1, seed=9),
    "l0-sliding": dict(alpha=1.0, dim=1, seed=9, window_size=64),
    "ksample": dict(alpha=1.0, dim=1, seed=9, k=2),
    "f0-infinite": dict(alpha=1.0, dim=1, seed=9, copies=3, epsilon=0.5),
    "f0-sliding": dict(alpha=1.0, dim=1, seed=9, window_size=64, copies=2),
    "heavy-hitters": dict(alpha=1.0, dim=1, seed=9, epsilon=0.1),
    "batch-pipeline": dict(
        alpha=1.0, dim=1, seed=9, num_shards=3, batch_size=16
    ),
    "exact": dict(alpha=1.0, dim=1, seed=9),
    "naive-reservoir": dict(seed=9),
    "minrank": dict(seed=9),
    "fm": dict(seed=9),
    "loglog": dict(seed=9),
    "hyperloglog": dict(seed=9),
    "bjkst": dict(seed=9),
}


from stream_generators import line_stream


def group_stream(n, seed, groups=8):
    """Thin wrapper over the shared generator (this module's defaults)."""
    return line_stream(n, seed, groups)


class TestGenericContract:
    """build -> batch-ingest -> query -> checkpoint -> merge (if any)."""

    @pytest.mark.parametrize("key", sorted(CONTRACT_SPECS))
    def test_contract(self, key):
        info = entry(key)
        kwargs = CONTRACT_SPECS[key]

        # 1. Build from a validated spec through the registry.
        spec = info.spec_cls(**kwargs)
        summary = build(key, spec)
        assert isinstance(summary, info.summary_cls)
        assert isinstance(summary, Summary)
        assert type(summary).summary_key == key

        # 2. Batch-ingest through the protocol.
        stream = group_stream(300, seed=31)
        processed = summary.process_many(stream)
        assert processed == len(stream)

        # 3. Query returns the summary's natural answer.
        result = summary.query(random.Random(0))
        assert result is not None

        # 4. Checkpoint round-trip through JSON is fingerprint-exact.
        envelope = json.loads(json.dumps(summary_to_state(summary)))
        assert envelope["summary"] == key
        restored = summary_from_state(envelope)
        assert state_fingerprint(restored) == state_fingerprint(summary)

        # 5. Merge where supported: two same-spec summaries over disjoint
        #    halves combine into one over the union.
        other = build(key, spec)
        other.process_many(group_stream(300, seed=37))
        if info.supports_merge:
            merged = summary.merge(other)
            assert isinstance(merged, info.summary_cls)
            assert merged.query(random.Random(1)) is not None
            if hasattr(merged, "points_seen"):
                assert (
                    merged.points_seen
                    == summary.points_seen + other.points_seen
                )
        else:
            with pytest.raises(MergeUnsupportedError):
                summary.merge(other)

    def test_contract_matrix_covers_registry(self):
        assert sorted(CONTRACT_SPECS) == available()

    @pytest.mark.parametrize("key", sorted(CONTRACT_SPECS))
    def test_spec_build_shortcut(self, key):
        spec = spec_class(key)(**CONTRACT_SPECS[key])
        summary = spec.build()
        assert isinstance(summary, entry(key).summary_cls)

    @pytest.mark.parametrize("key", sorted(CONTRACT_SPECS))
    def test_spec_state_round_trip(self, key):
        spec = spec_class(key)(**CONTRACT_SPECS[key])
        restored = spec_from_state(json.loads(json.dumps(spec.to_state())))
        assert restored == spec


class TestRegistry:
    def test_unknown_key(self):
        with pytest.raises(ParameterError, match="unknown summary key"):
            build("no-such-summary", alpha=1.0, dim=1)

    def test_kwargs_construction(self):
        sampler = build("l0-infinite", alpha=0.5, dim=2, seed=1)
        sampler.process_many([(0.0, 0.0), (9.0, 9.0)])
        assert sampler.points_seen == 2

    def test_spec_type_mismatch(self):
        spec = L0InfiniteSpec(alpha=1.0, dim=1)
        with pytest.raises(ParameterError, match="expects"):
            build("l0-sliding", spec)

    def test_entries_metadata(self):
        rows = entries()
        assert [row.key for row in rows] == available()
        assert all(row.description for row in rows)

    def test_conflicting_registration_rejected(self):
        info = entry("fm")
        with pytest.raises(ParameterError, match="already bound"):
            register_summary(
                "fm",
                info.spec_cls,
                object,
                lambda spec: object(),
                supports_merge=False,
                description="conflict",
            )

    def test_idempotent_re_registration_allowed(self):
        info = entry("fm")
        register_summary(
            "fm",
            info.spec_cls,
            info.summary_cls,
            info.factory,
            supports_merge=info.supports_merge,
            description=info.description,
        )
        assert entry("fm").summary_cls is info.summary_cls


class TestSpecValidation:
    def test_specs_are_frozen(self):
        spec = L0InfiniteSpec(alpha=1.0, dim=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.alpha = 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(alpha=0.0, dim=1),
            dict(alpha=-1.0, dim=1),
            dict(alpha=1.0, dim=0),
            dict(alpha=1.0, dim=1, kappa0=0.0),
        ],
    )
    def test_l0_infinite_rejects(self, kwargs):
        with pytest.raises(ParameterError):
            L0InfiniteSpec(**kwargs)

    def test_sliding_requires_exactly_one_window(self):
        with pytest.raises(ParameterError):
            L0SlidingSpec(alpha=1.0, dim=1)
        with pytest.raises(ParameterError):
            L0SlidingSpec(
                alpha=1.0, dim=1, window_size=8, window_seconds=2.0
            )

    def test_time_window_requires_capacity(self):
        with pytest.raises(ParameterError, match="window_capacity"):
            L0SlidingSpec(alpha=1.0, dim=1, window_seconds=5.0)

    def test_ksample_windows_mutually_exclusive(self):
        with pytest.raises(ParameterError):
            KSampleSpec(
                alpha=1.0, dim=1, window_size=8, window_seconds=2.0,
                window_capacity=8,
            )

    def test_f0_epsilon_domain(self):
        with pytest.raises(ParameterError):
            F0InfiniteSpec(alpha=1.0, dim=1, epsilon=0.0)

    def test_heavy_phi_domain(self):
        with pytest.raises(ParameterError):
            HeavyHittersSpec(alpha=1.0, dim=1, phi=1.5)

    def test_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            L0InfiniteSpec(alpha=0.0, dim=1)


class TestMergeSemantics:
    def test_merge_requires_matching_configs(self):
        a = build("l0-infinite", alpha=1.0, dim=1, seed=1)
        b = build("l0-infinite", alpha=1.0, dim=1, seed=2)
        a.insert((0.0,))
        b.insert((0.0,))
        with pytest.raises(ParameterError, match="configurations"):
            a.merge(b)

    def test_merge_requires_same_type(self):
        a = build("l0-infinite", alpha=1.0, dim=1, seed=1)
        b = build("heavy-hitters", alpha=1.0, dim=1, seed=1)
        with pytest.raises(ParameterError, match="cannot merge"):
            a.merge(b)

    def test_l0_merge_matches_coordinator_semantics(self):
        # merge() on samplers == the distributed coordinator's merge.
        from repro.distributed.coordinator import DistributedRobustSampler

        coordinator = DistributedRobustSampler(1.0, 1, num_shards=2, seed=3)
        stream = group_stream(200, seed=41)
        for i, point in enumerate(stream):
            coordinator.route(point, shard=i % 2)
        via_protocol = coordinator.shard(0).merge(coordinator.shard(1))
        via_coordinator = coordinator.merged_sampler()
        assert state_fingerprint(via_protocol) == state_fingerprint(
            via_coordinator
        )

    def test_merged_sampler_accepts_further_ingestion(self):
        # Regression: re-keyed representatives must never collide with
        # the arrival indices of points inserted after the merge (they
        # get fresh negative keys).
        a = build("l0-infinite", alpha=1.0, dim=1, seed=3)
        b = build("l0-infinite", alpha=1.0, dim=1, seed=3)
        a.process_many([(25.0 * (i % 4),) for i in range(100)])
        b.insert((200.0,))
        merged = a.merge(b)
        merged.process_many([(300.0 + 25.0 * g,) for g in range(200)])
        assert merged.points_seen == 301
        counts = {
            record.count for record in merged._store.records()
        }
        assert counts  # every record intact, no silent overwrites

    def test_merged_heavy_hitters_accept_further_ingestion(self):
        # Regression: same collision, heavy-hitter counter table.
        a = build("heavy-hitters", alpha=1.0, dim=1, seed=3, epsilon=0.01)
        b = build("heavy-hitters", alpha=1.0, dim=1, seed=3, epsilon=0.01)
        a.process_many([(50.0 * (i % 3),) for i in range(100)])
        b.insert((500.0,))
        merged = a.merge(b)
        merged.process_many([(1000.0 + 50.0 * g,) for g in range(250)])
        assert merged.points_seen == 101 + 250
        # SpaceSaving invariant: every arrival increments exactly one
        # counter (evictions inherit the victim's count + 1), so count
        # mass is conserved - a key collision silently dropping a counter
        # would break this.
        assert (
            sum(c.count for c in merged._counters.values())
            == merged.points_seen
        )

    def test_track_members_merge_unsupported(self):
        a = build("l0-infinite", alpha=1.0, dim=1, seed=1, track_members=True)
        b = build("l0-infinite", alpha=1.0, dim=1, seed=1, track_members=True)
        a.insert((0.0,))
        b.insert((1.0,))
        with pytest.raises(MergeUnsupportedError):
            a.merge(b)

    def test_heavy_hitter_merge_finds_union_heavy_group(self):
        rng = random.Random(7)
        a = build("heavy-hitters", alpha=1.0, dim=1, seed=5, epsilon=0.2)
        b = build("heavy-hitters", alpha=1.0, dim=1, seed=5, epsilon=0.2)
        # The heavy group is split across the two inputs.
        a.process_many([(0.0 + rng.uniform(0, 0.3),) for _ in range(40)])
        a.process_many([(50.0 * g,) for g in range(1, 4)])
        b.process_many([(0.0 + rng.uniform(0, 0.3),) for _ in range(35)])
        b.process_many([(70.0 * g,) for g in range(1, 4)])
        merged = a.merge(b)
        top = merged.heavy_hitters(phi=0.5)
        assert len(top) == 1
        assert abs(top[0].representative.vector[0]) < 1.0
        assert top[0].count >= 75  # overestimate of the pooled true count

    def test_fm_merge_equals_union_sketch(self):
        union = build("fm", seed=3)
        a = build("fm", seed=3)
        b = build("fm", seed=3)
        items_a = [(float(i),) for i in range(100)]
        items_b = [(float(i),) for i in range(50, 150)]
        a.process_many(items_a)
        b.process_many(items_b)
        union.process_many(items_a)
        union.process_many(items_b)
        merged = a.merge(b)
        assert state_fingerprint(merged) == state_fingerprint(union)

    def test_bjkst_merge_equals_union_sketch(self):
        union = build("bjkst", seed=3, epsilon=0.5)
        a = build("bjkst", seed=3, epsilon=0.5)
        b = build("bjkst", seed=3, epsilon=0.5)
        items_a = [(float(i),) for i in range(400)]
        items_b = [(float(i),) for i in range(300, 700)]
        a.process_many(items_a)
        b.process_many(items_b)
        union.process_many(items_a)
        union.process_many(items_b)
        merged = a.merge(b)
        assert merged.estimate() == union.estimate()
        assert sorted(merged._kept) == sorted(union._kept)
