"""Tests for repro.streams: points, windows, sources."""

from __future__ import annotations

import random

import pytest

from repro.errors import ParameterError
from repro.streams.point import StreamPoint, as_stream
from repro.streams.sources import (
    interleave_streams,
    replay,
    shuffled,
    with_poisson_times,
)
from repro.streams.windows import InfiniteWindow, SequenceWindow, TimeWindow


class TestStreamPoint:
    def test_time_defaults_to_index(self):
        p = StreamPoint((1.0,), 5)
        assert p.time == 5.0

    def test_explicit_time(self):
        p = StreamPoint((1.0,), 5, 99.5)
        assert p.time == 99.5

    def test_vector_coerced_to_tuple(self):
        p = StreamPoint([1, 2], 0)  # type: ignore[arg-type]
        assert p.vector == (1.0, 2.0)
        assert isinstance(p.vector, tuple)

    def test_dim_len_iter(self):
        p = StreamPoint((1.0, 2.0, 3.0), 0)
        assert p.dim == len(p) == 3
        assert list(p) == [1.0, 2.0, 3.0]

    def test_hashable_and_frozen(self):
        p = StreamPoint((1.0,), 0)
        assert hash(p) == hash(StreamPoint((1.0,), 0))
        with pytest.raises(AttributeError):
            p.index = 3  # type: ignore[misc]


class TestAsStream:
    def test_indices_sequential(self):
        pts = list(as_stream([(0.0,), (1.0,), (2.0,)]))
        assert [p.index for p in pts] == [0, 1, 2]

    def test_with_times(self):
        pts = list(as_stream([(0.0,), (1.0,)], times=[2.5, 7.5]))
        assert [p.time for p in pts] == [2.5, 7.5]

    def test_start_index(self):
        pts = list(as_stream([(0.0,)], start_index=10))
        assert pts[0].index == 10


class TestWindows:
    def test_infinite_never_expires(self):
        spec = InfiniteWindow()
        old = StreamPoint((0.0,), 0)
        new = StreamPoint((0.0,), 10**9)
        assert spec.in_window(old, new)
        assert spec.size == float("inf")

    def test_sequence_window_boundary(self):
        spec = SequenceWindow(3)
        latest = StreamPoint((0.0,), 10)
        assert spec.in_window(StreamPoint((0.0,), 8), latest)
        assert not spec.in_window(StreamPoint((0.0,), 7), latest)

    def test_sequence_window_size_one(self):
        spec = SequenceWindow(1)
        latest = StreamPoint((0.0,), 4)
        assert spec.in_window(latest, latest)
        assert not spec.in_window(StreamPoint((0.0,), 3), latest)

    def test_time_window_boundary(self):
        spec = TimeWindow(5.0)
        latest = StreamPoint((0.0,), 99, 100.0)
        assert spec.in_window(StreamPoint((0.0,), 0, 95.5), latest)
        assert not spec.in_window(StreamPoint((0.0,), 0, 95.0), latest)

    def test_invalid_sizes(self):
        with pytest.raises(ParameterError):
            SequenceWindow(0)
        with pytest.raises(ParameterError):
            TimeWindow(0.0)

    def test_expiry_keys_monotone(self):
        seq = SequenceWindow(5)
        tim = TimeWindow(5.0)
        a = StreamPoint((0.0,), 1, 10.0)
        b = StreamPoint((0.0,), 2, 20.0)
        assert seq.expiry_key(a) < seq.expiry_key(b)
        assert tim.expiry_key(a) < tim.expiry_key(b)

    def test_expired_is_negation(self):
        spec = SequenceWindow(2)
        latest = StreamPoint((0.0,), 5)
        inside = StreamPoint((0.0,), 4)
        assert spec.in_window(inside, latest) != spec.expired(inside, latest)


class TestSources:
    def test_shuffled_reindexes(self):
        pts = shuffled([(0.0,), (1.0,), (2.0,)], rng=random.Random(0))
        assert [p.index for p in pts] == [0, 1, 2]
        assert {p.vector[0] for p in pts} == {0.0, 1.0, 2.0}

    def test_replay_renumbers(self):
        pts = [StreamPoint((0.0,), 7), StreamPoint((1.0,), 9)]
        out = list(replay(pts))
        assert [p.index for p in out] == [0, 1]
        assert out[0].time == 7.0  # original time preserved

    def test_poisson_times_increase(self):
        pts = list(
            with_poisson_times([(0.0,)] * 50, rate=2.0, rng=random.Random(1))
        )
        times = [p.time for p in pts]
        assert all(b > a for a, b in zip(times, times[1:]))
        # Expected duration ~ 50/2 = 25.
        assert 5 < times[-1] < 100

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            list(with_poisson_times([(0.0,)], rate=0.0))

    def test_interleave_orders_by_time(self):
        a = list(as_stream([(0.0,), (1.0,)], times=[1.0, 5.0]))
        b = list(as_stream([(2.0,)], times=[3.0]))
        merged = interleave_streams([a, b], rng=random.Random(0))
        assert [p.time for p in merged] == [1.0, 3.0, 5.0]
        assert [p.index for p in merged] == [0, 1, 2]
