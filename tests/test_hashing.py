"""Tests for repro.hashing: mixers, k-wise hashing, nested sampling."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.hashing.kwise import MERSENNE_P, KWiseHash, _mod_mersenne
from repro.hashing.mix import SplitMix64, splitmix64
from repro.hashing.sampling import SamplingHash

KEYS = st.integers(min_value=0, max_value=2**64 - 1)


class TestSplitMix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_range(self):
        for key in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(key) < 2**64

    def test_distinct_keys_usually_distinct_values(self):
        values = {splitmix64(k) for k in range(1000)}
        assert len(values) == 1000

    def test_seeded_instances_agree(self):
        a, b = SplitMix64(7), SplitMix64(7)
        assert all(a(k) == b(k) for k in range(100))

    def test_different_seeds_differ(self):
        a, b = SplitMix64(1), SplitMix64(2)
        assert any(a(k) != b(k) for k in range(10))

    def test_avalanche_rough(self):
        # Flipping one input bit should flip ~half the output bits.
        h = SplitMix64(0)
        total = 0
        trials = 200
        for k in range(trials):
            flipped = h(k) ^ h(k ^ 1)
            total += bin(flipped).count("1")
        assert 20 < total / trials < 44

    @given(KEYS)
    @settings(max_examples=200)
    def test_output_in_range_property(self, key):
        assert 0 <= splitmix64(key) < 2**64


class TestKWiseHash:
    def test_rejects_small_k(self):
        with pytest.raises(ParameterError):
            KWiseHash(k=1)

    def test_deterministic(self):
        h = KWiseHash(k=4, seed=9)
        assert h(123) == h(123)

    def test_range(self):
        h = KWiseHash(k=4, seed=9)
        for key in (0, 1, MERSENNE_P - 1, MERSENNE_P, 2**64):
            assert 0 <= h(key) < MERSENNE_P

    def test_mod_mersenne_matches_builtin(self):
        for value in (0, 1, MERSENNE_P, MERSENNE_P + 5, (MERSENNE_P - 1) ** 2):
            assert _mod_mersenne(value) == value % MERSENNE_P

    def test_pairwise_independence_statistics(self):
        # For random seeds, Pr[h(a) mod 2 == h(b) mod 2] should be ~1/2.
        agree = 0
        trials = 400
        for seed in range(trials):
            h = KWiseHash(k=2, seed=seed)
            agree += (h(17) & 1) == (h(29) & 1)
        assert 0.4 < agree / trials < 0.6

    def test_k_property(self):
        assert KWiseHash(k=7, seed=0).k == 7

    @given(st.integers(min_value=0, max_value=2**80))
    @settings(max_examples=100)
    def test_range_property(self, key):
        h = KWiseHash(k=3, seed=5)
        assert 0 <= h(key) < MERSENNE_P


class TestSamplingHash:
    def test_rate_one_samples_everything(self):
        h = SamplingHash(seed=1)
        assert all(h.is_sampled(k, 1) for k in range(200))

    def test_rejects_non_power_of_two(self):
        h = SamplingHash(seed=1)
        with pytest.raises(ParameterError):
            h.is_sampled(5, 3)
        with pytest.raises(ParameterError):
            h.is_sampled(5, 0)

    def test_residue_matches_mod(self):
        h = SamplingHash(seed=2)
        for key in range(50):
            assert h.residue(key, 8) == h.value(key) % 8

    @given(KEYS, st.integers(min_value=0, max_value=20))
    @settings(max_examples=300)
    def test_nested_sampling_property(self, key, log_rate):
        """Fact 1(b): sampled at rate 1/2R implies sampled at rate 1/R."""
        h = SamplingHash(seed=77)
        rate = 2**log_rate
        if h.is_sampled(key, 2 * rate):
            assert h.is_sampled(key, rate)

    def test_sampling_rate_statistics(self):
        h = SamplingHash(seed=3)
        rate = 8
        sampled = sum(h.is_sampled(k, rate) for k in range(8000))
        expected = 8000 / rate
        assert abs(sampled - expected) < 4 * math.sqrt(expected)

    def test_kwise_base_also_nests(self):
        h = SamplingHash(KWiseHash(k=8, seed=4))
        for key in range(2000):
            if h.is_sampled(key, 16):
                assert h.is_sampled(key, 8)
                assert h.is_sampled(key, 4)

    def test_independent_seeds_sample_different_sets(self):
        a = SamplingHash(seed=10)
        b = SamplingHash(seed=11)
        sampled_a = {k for k in range(4000) if a.is_sampled(k, 8)}
        sampled_b = {k for k in range(4000) if b.is_sampled(k, 8)}
        assert sampled_a != sampled_b


class TestSamplingUniformity:
    def test_low_bits_unbiased(self):
        h = SamplingHash(seed=5)
        rng = random.Random(0)
        ones = sum(h.value(rng.randrange(2**60)) & 1 for _ in range(4000))
        assert 1800 < ones < 2200
