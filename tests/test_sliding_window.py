"""Tests for Algorithm 3 (RobustL0SamplerSW) and Split/Merge."""

from __future__ import annotations

import collections
import random

import pytest

from repro.core.base import SamplerConfig
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.core.sliding_window import RobustL0SamplerSW
from repro.errors import EmptySampleError, ParameterError
from repro.metrics.accuracy import chi_square_uniformity
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow, TimeWindow


def far_stream(n, spacing=20.0):
    """n singleton groups far apart on a line."""
    return [StreamPoint((spacing * i,), i) for i in range(n)]


class TestConstruction:
    def test_time_window_requires_capacity(self):
        with pytest.raises(ParameterError):
            RobustL0SamplerSW(1.0, 1, TimeWindow(10.0))

    def test_time_window_with_capacity(self):
        sw = RobustL0SamplerSW(1.0, 1, TimeWindow(10.0), window_capacity=64)
        assert sw.num_levels == 7  # ceil(log2(64)) + 1

    def test_sequence_capacity_defaults_to_w(self):
        sw = RobustL0SamplerSW(1.0, 1, SequenceWindow(32))
        assert sw.num_levels == 6

    def test_invalid_capacity(self):
        with pytest.raises(ParameterError):
            RobustL0SamplerSW(1.0, 1, TimeWindow(5.0), window_capacity=0)

    def test_rates_are_powers_of_two(self):
        sw = RobustL0SamplerSW(1.0, 1, SequenceWindow(16))
        rates = [sw.level(i).rate_denominator for i in range(sw.num_levels)]
        assert rates == [1, 2, 4, 8, 16]


class TestStreaming:
    def test_empty_sample_raises(self):
        sw = RobustL0SamplerSW(1.0, 1, SequenceWindow(4), seed=0)
        with pytest.raises(EmptySampleError):
            sw.sample()

    def test_sample_always_in_window(self):
        sw = RobustL0SamplerSW(1.0, 1, SequenceWindow(4), seed=1)
        stream = far_stream(50)
        rng = random.Random(0)
        for i, p in enumerate(stream):
            sw.insert(p)
            if i >= 3:
                sample = sw.sample(rng)
                assert sample.index > i - 4, (i, sample.index)

    def test_monotonic_arrival_enforced(self):
        sw = RobustL0SamplerSW(1.0, 1, SequenceWindow(4), seed=2)
        sw.insert(StreamPoint((0.0,), 5))
        with pytest.raises(ParameterError):
            sw.insert(StreamPoint((1.0,), 3))

    def test_dimension_check(self):
        sw = RobustL0SamplerSW(1.0, 2, SequenceWindow(4), seed=0)
        with pytest.raises(ParameterError):
            sw.insert((1.0,))

    def test_accept_bound_invariant_all_levels(self):
        sw = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(256), seed=3, expected_stream_length=1000
        )
        for p in far_stream(1000):
            sw.insert(p)
            threshold = sw._policy.threshold()
            for level in range(sw.num_levels):
                assert sw.level(level).accepted_count <= threshold

    def test_sample_matches_exact_window_tracker(self):
        """The sampled group must be one with its last point in-window
        (verified against a rate-1 exact tracker)."""
        seed = 4
        window = SequenceWindow(64)
        sw = RobustL0SamplerSW(1.0, 1, window, seed=seed)
        config = SamplerConfig.create(1.0, 1, seed=seed + 1000)
        tracker = FixedRateSlidingSampler(config, 1, window)
        rng = random.Random(0)
        gen = random.Random(9)
        stream = []
        for i in range(600):
            group = gen.randrange(40)
            stream.append(StreamPoint((20.0 * group + gen.uniform(0, 0.5),), i))
        for i, p in enumerate(stream):
            sw.insert(p)
            tracker.insert(p)
            if i % 50 == 49:
                tracker.evict(p)
                live_groups = {
                    round(r.representative.vector[0] / 20.0)
                    for r in tracker.accepted_records()
                }
                sample = sw.sample(rng)
                assert round(sample.vector[0] / 20.0) in live_groups

    def test_extend(self):
        sw = RobustL0SamplerSW(1.0, 1, SequenceWindow(8), seed=5)
        sw.extend(far_stream(20))
        assert sw.points_seen == 20


class TestHierarchyMechanics:
    def test_each_group_tracked_at_exactly_one_level(self):
        # Uniformity invariant I1: no group may own records at two levels
        # (that would double its sampling weight).
        sw = RobustL0SamplerSW(1.0, 1, SequenceWindow(128), seed=6)
        gen = random.Random(3)
        for i in range(500):
            group = gen.randrange(60)
            sw.insert(StreamPoint((20.0 * group + gen.uniform(0, 0.5),), i))
        seen: dict[int, int] = {}
        for level in range(sw.num_levels):
            for record in sw.level(level).records():
                group = round(record.representative.vector[0] // 20.0)
                assert group not in seen, (
                    f"group {group} tracked at levels {seen[group]} and {level}"
                )
                seen[group] = level

    def test_rejected_group_reactivates_at_level_zero(self):
        # A rejected record receiving fresh activity must move to level 0
        # and become sampleable again (the DESIGN.md repair).
        sw = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(4096), seed=11, expected_stream_length=5000
        )
        for p in far_stream(3000):
            sw.insert(p)
        rejected = None
        for level in range(1, sw.num_levels):
            records = sw.level(level).rejected_records()
            if records:
                rejected = records[0]
                break
        if rejected is None:
            pytest.skip("no rejected record materialised for this seed")
        revisit = StreamPoint(rejected.representative.vector, 3000)
        sw.insert(revisit)
        moved = sw.level(0).find_group(
            revisit.vector, sw._config.point_context(revisit.vector).cell_hash
        )
        assert moved is not None
        assert moved.accepted
        assert moved.representative.index == rejected.representative.index

    def test_split_preserves_status_definition(self):
        sw = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(512), seed=7, expected_stream_length=2000
        )
        for p in far_stream(2000):
            sw.insert(p)
        for level in range(sw.num_levels):
            mask = sw.level(level).rate_denominator - 1
            for record in sw.level(level).records():
                if record.accepted:
                    assert record.cell_hash & mask == 0
                else:
                    assert record.cell_hash & mask != 0
                    assert any(v & mask == 0 for v in record.adj_hashes)

    def test_deepest_active_level_reflects_population(self):
        sw_small = RobustL0SamplerSW(1.0, 1, SequenceWindow(1024), seed=8)
        for p in far_stream(10):
            sw_small.insert(p)
        small = sw_small.deepest_active_level()

        sw_big = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(1024), seed=8, expected_stream_length=1000
        )
        for p in far_stream(1000):
            sw_big.insert(p)
        big = sw_big.deepest_active_level()
        assert big is not None and small is not None
        assert big > small

    def test_estimate_f0_tracks_window_population(self):
        sw = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(512), seed=9, expected_stream_length=512
        )
        for p in far_stream(512):
            sw.insert(p)
        estimate = sw.estimate_f0()
        assert 32 <= estimate <= 4096  # order of magnitude around 512

    def test_space_stays_polylog(self):
        sw = RobustL0SamplerSW(
            1.0, 1, SequenceWindow(256), seed=10, expected_stream_length=3000
        )
        for p in far_stream(3000):
            sw.insert(p)
        # Exact tracker would hold ~256 groups x ~4 words; the hierarchy
        # should be within O(log w log m) words, far below m.
        assert sw.peak_space_words < 3000
        assert sw.space_words() > 0


class TestUniformity:
    def test_uniform_over_window_groups(self):
        """Theorem 2.7: groups in the window sampled ~uniformly."""
        num_groups = 6
        runs = 500
        window = SequenceWindow(30)
        counts = collections.Counter()
        query_rng = random.Random(17)
        for run in range(runs):
            gen = random.Random(run)
            sw = RobustL0SamplerSW(1.0, 1, window, seed=run ^ 0x5151)
            # Final 30 points: 5 from each of 6 groups, interleaved.
            warmup = [StreamPoint((1000.0 + 20.0 * g,), i) for i, g in
                      enumerate(gen.randrange(10) for _ in range(40))]
            tail_groups = [g for g in range(num_groups) for _ in range(5)]
            gen.shuffle(tail_groups)
            tail = [
                StreamPoint((20.0 * g + gen.uniform(0, 0.5),), 40 + i)
                for i, g in enumerate(tail_groups)
            ]
            for p in warmup + tail:
                sw.insert(p)
            sample = sw.sample(query_rng)
            counts[round(sample.vector[0] // 20.0)] += 1
        dense = [counts.get(g, 0) for g in range(num_groups)]
        assert sum(dense) == runs  # never sample expired warmup groups
        _, p_value = chi_square_uniformity(dense)
        assert p_value > 1e-4, dense
