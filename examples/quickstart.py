"""Quickstart: robust distinct sampling in five minutes.

A stream of 2-D points contains three "real" locations, each observed
many times with small measurement noise.  Standard sampling over-weights
the location with the most observations; the robust l0-sampler returns
each location with equal probability.

Run:  python examples/quickstart.py
"""

import collections
import random

from repro.api import L0InfiniteSpec, L0SlidingSpec

ALPHA = 0.5  # points within 0.5 of each other are the same entity

LOCATIONS = {
    "cafe": (1.0, 1.0),
    "library": (8.0, 2.0),
    "station": (4.0, 9.0),
}
# Wildly unequal observation counts - the noise the paper targets.
OBSERVATIONS = {"cafe": 500, "library": 20, "station": 3}


def build_stream(rng: random.Random) -> list[tuple[float, float]]:
    """Noisy repeated sightings of the three locations, shuffled."""
    stream = []
    for name, (x, y) in LOCATIONS.items():
        for _ in range(OBSERVATIONS[name]):
            stream.append(
                (x + rng.uniform(-0.1, 0.1), y + rng.uniform(-0.1, 0.1))
            )
    rng.shuffle(stream)
    return stream


def nearest_location(vector) -> str:
    """Attribute a sampled point to its ground-truth location."""
    return min(
        LOCATIONS,
        key=lambda name: sum(
            (a - b) ** 2 for a, b in zip(LOCATIONS[name], vector)
        ),
    )


def main() -> None:
    rng = random.Random(7)

    # --- infinite window -------------------------------------------------
    # Spec -> build -> extend -> query: the unified API surface.
    tally = collections.Counter()
    for trial in range(300):
        sampler = L0InfiniteSpec(alpha=ALPHA, dim=2, seed=trial).build()
        sampler.extend(build_stream(random.Random(trial)))
        tally[nearest_location(sampler.query(rng).vector)] += 1

    print("Robust distinct sampling over 300 independent runs:")
    for name, count in sorted(tally.items()):
        print(f"  {name:8s} sampled {count:3d} times "
              f"({count / 300:.0%}, target ~33%)")

    # --- sliding window ---------------------------------------------------
    # Only the last 100 sightings matter: the station dominates the tail.
    sw = L0SlidingSpec(alpha=ALPHA, dim=2, window_size=100, seed=1).build()
    stream = build_stream(random.Random(99))
    stream += [(4.0 + rng.uniform(-0.1, 0.1), 9.0) for _ in range(120)]
    sw.extend(stream)
    sample = sw.query(rng)
    print(f"\nSliding window (last 100 points) sample: "
          f"{nearest_location(sample.vector)} at {sample.vector}")


if __name__ == "__main__":
    main()
