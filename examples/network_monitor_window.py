"""Monitoring distinct active clients over a time-based sliding window.

A network telemetry stream: each packet carries a client feature vector
(e.g. a jittered device fingerprint - the same client never reports
exactly the same vector twice).  Operations wants "a random active client
from the last 60 seconds" for spot-checks, and an estimate of how many
distinct clients were active - both robust to fingerprint jitter, both in
small space.  Chatty clients (many packets) must not be over-sampled.

Run:  python examples/network_monitor_window.py
"""

import collections
import random

from repro.api import L0SlidingSpec
from repro.persist import summary_from_state, summary_to_state
from repro.streams import with_poisson_times

DIM = 6
ALPHA = 0.1          # fingerprint jitter radius
WINDOW_SECONDS = 60.0
PACKET_RATE = 40.0   # packets per second


def client_fleet(rng: random.Random, count: int):
    """Base fingerprints; each client re-appears with jitter."""
    return [tuple(rng.uniform(0, 10) for _ in range(DIM)) for _ in range(count)]


def packet_vectors(clients, rng: random.Random, num_packets: int):
    """Packets: a chatty head (client 0 sends 50% of traffic), jittered.

    Per-coordinate jitter is scaled by 1/sqrt(DIM) so any two packets of
    the same client stay within ALPHA of each other (group diameter below
    the threshold).
    """
    jitter = ALPHA / (3.0 * DIM**0.5)
    vectors = []
    owners = []
    for _ in range(num_packets):
        if rng.random() < 0.5:
            owner = 0  # the chatty client
        else:
            owner = rng.randrange(1, len(clients))
        base = clients[owner]
        vectors.append(tuple(c + rng.uniform(-jitter, jitter) for c in base))
        owners.append(owner)
    return vectors, owners


def main() -> None:
    rng = random.Random(11)
    clients = client_fleet(rng, 40)
    vectors, owners = packet_vectors(clients, rng, 6000)

    spec = L0SlidingSpec(
        alpha=ALPHA,
        dim=DIM,
        window_seconds=WINDOW_SECONDS,
        window_capacity=int(WINDOW_SECONDS * PACKET_RATE * 2),
        seed=5,
    )
    sampler = spec.build()

    stream = list(
        with_poisson_times(vectors, rate=PACKET_RATE, rng=random.Random(2))
    )
    owner_of = {point.index: owners[i] for i, point in enumerate(stream)}

    spot_checks = collections.Counter()

    def monitor(points):
        for point in points:
            sampler.insert(point)
            # Periodic spot-check: who is a random active client now?
            if point.index and point.index % 500 == 0:
                picked = sampler.sample(rng)
                spot_checks[owner_of[picked.index]] += 1
                active_estimate = sampler.estimate_f0()
                print(
                    f"t={point.time:7.1f}s  spot-check client "
                    f"#{owner_of[picked.index]:2d}   "
                    f"~{active_estimate:5.1f} distinct clients active "
                    f"(window={WINDOW_SECONDS:.0f}s, "
                    f"space={sampler.space_words()} words)"
                )

    midpoint = len(stream) // 2
    monitor(stream[:midpoint])
    # Rolling deploy mid-stream: checkpoint the live hierarchy through the
    # universal protocol, "restart", restore, and keep monitoring - the
    # restored sampler makes decisions identical to the original's.
    sampler = summary_from_state(summary_to_state(sampler))
    print(f"--- checkpoint/restore at packet {midpoint} "
          f"(envelope: {sampler.summary_key}) ---")
    monitor(stream[midpoint:])

    chatty_share = spot_checks[0] / max(1, sum(spot_checks.values()))
    print(f"\nchatty client owns 50% of packets but "
          f"{chatty_share:.0%} of spot-checks (target ~{1 / 40:.0%})")
    print(f"peak space: {sampler.peak_space_words} words for "
          f"{len(stream)} packets")


if __name__ == "__main__":
    main()
