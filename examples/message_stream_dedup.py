"""Sampling distinct messages from a social stream with re-shares.

The paper's introduction motivates the problem with tweets and chat
messages that are "re-sent with small edits".  This example simulates a
message firehose: each original message is a point in a feature space
(think: an embedding), and every re-share perturbs it slightly.  Viral
messages are re-shared thousands of times; a uniform sample of *posts*
almost always returns a viral message, while the robust sampler returns
every distinct message with equal probability - exactly what you want
when, say, labelling a training set of distinct content.

Run:  python examples/message_stream_dedup.py
"""

import collections
import math
import random

from repro.api import KSampleSpec, L0InfiniteSpec, NaiveReservoirSpec, build

DIM = 8          # embedding dimension
NUM_MESSAGES = 120
ALPHA = 0.05     # re-shares stay within this embedding distance


def make_corpus(rng: random.Random):
    """Original messages with power-law re-share counts."""
    messages = []
    for i in range(NUM_MESSAGES):
        embedding = tuple(rng.gauss(0.0, 1.0) for _ in range(DIM))
        # Rank-i message gets ~N/i re-shares (a viral head, long tail).
        reshares = max(1, NUM_MESSAGES // (i + 1))
        messages.append((embedding, reshares))
    return messages


def make_stream(messages, rng: random.Random):
    """One point per post: the original plus each noisy re-share."""
    stream = []
    for message_id, (embedding, reshares) in enumerate(messages):
        stream.append((embedding, message_id))
        for _ in range(reshares):
            noise = [rng.gauss(0.0, 1.0) for _ in range(DIM)]
            norm = math.sqrt(sum(x * x for x in noise)) or 1.0
            length = rng.uniform(0.0, ALPHA / 2.0)
            reshared = tuple(
                e + length * x / norm for e, x in zip(embedding, noise)
            )
            stream.append((reshared, message_id))
    rng.shuffle(stream)
    return stream


def main() -> None:
    rng = random.Random(42)
    messages = make_corpus(rng)
    total_posts = sum(1 + r for _, r in messages)
    print(f"{NUM_MESSAGES} distinct messages, {total_posts} posts "
          f"(most viral: {messages[0][1]} re-shares)\n")

    robust_hits = collections.Counter()
    naive_hits = collections.Counter()
    trials = 400
    for trial in range(trials):
        stream = make_stream(messages, random.Random(trial))
        robust = build("l0-infinite", L0InfiniteSpec(
            alpha=ALPHA, dim=DIM, seed=trial))
        naive = build("naive-reservoir", NaiveReservoirSpec(seed=trial ^ 0xA0))
        ids = {}
        for index, (vector, message_id) in enumerate(stream):
            ids[index] = message_id
            robust.insert(vector)
            naive.insert(vector)
        robust_hits[ids[robust.sample(rng).index]] += 1
        naive_hits[ids[naive.sample().index]] += 1

    # Messages 0..9 are the viral head (the 10 most re-shared); probing a
    # group of them keeps the estimate stable at this trial count.
    viral_head = set(range(10))
    target = len(viral_head) / NUM_MESSAGES
    robust_share = sum(robust_hits[m] for m in viral_head) / trials
    naive_share = sum(naive_hits[m] for m in viral_head) / trials
    print(f"Probability of sampling one of the 10 most viral messages "
          f"(uniform target = {target:.1%}):")
    print(f"  robust l0 sampler : {robust_share:.1%}")
    print(f"  naive reservoir   : {naive_share:.1%}  <- biased")

    distinct_sampled = len(robust_hits)
    print(f"\nDistinct messages seen across robust samples: "
          f"{distinct_sampled}/{NUM_MESSAGES}")

    # Draw a labelled batch of 5 distinct messages, no repeats.
    batch_sampler = KSampleSpec(
        alpha=ALPHA, dim=DIM, k=5, replacement=False, seed=7
    ).build()
    stream = make_stream(messages, random.Random(999))
    ids = {}
    for index, (vector, message_id) in enumerate(stream):
        ids[index] = message_id
        batch_sampler.insert(vector)
    batch = batch_sampler.query(rng)
    print(f"Batch of 5 distinct messages for labelling: "
          f"{sorted(ids[p.index] for p in batch)}")


if __name__ == "__main__":
    main()
