"""Distinct sampling across distributed noisy feeds, two ways.

Part 1 - regional shards, explicit routing: three regional ingestion
points receive overlapping slices of the same logical event stream
(each event re-observed with sensor noise, often in several regions at
once).  Each region runs a shard sampler; a central coordinator merges
the shard *sketches* - not the data - and answers "one random distinct
event" and "how many distinct events" over the union.  Because all
shards share one grid + hash configuration, their accept/reject
decisions are mutually consistent and the merge is exact.

Part 2 - one machine, parallel shard executors: the same merge
machinery scales a *local* ingestion job across worker processes.
``PipelineSpec(executor="process")`` deals chunks round-robin to shard
replicas living in worker processes; on query, the coordinator folds
each worker's shard state into the running union sampler as it arrives
(streaming merge).  The parallel pipeline's state is
fingerprint-identical to the serial one - the executor is a throughput
knob, not a semantic one.

Run:  python examples/distributed_feeds.py
"""

import random

from repro.api import L0InfiniteSpec, PipelineSpec
from repro.distributed import DistributedRobustSampler
from repro.engine import state_fingerprint

DIM = 4
ALPHA = 0.2
NUM_EVENTS = 300
REGIONS = 3


def regional_coordinator() -> None:
    rng = random.Random(5)
    # One spec describes every shard; the coordinator derives the shared
    # grid/hash from it so all regions' decisions are consistent.
    coordinator = DistributedRobustSampler(
        spec=L0InfiniteSpec(
            alpha=ALPHA, dim=DIM, seed=42,
            expected_stream_length=NUM_EVENTS * 6,
        ),
        num_shards=REGIONS,
    )

    # Each event: a ground-truth feature vector, observed 1-6 times,
    # each observation routed to a random region with noise.
    events = [
        tuple(rng.uniform(0, 50) for _ in range(DIM)) for _ in range(NUM_EVENTS)
    ]
    observations = 0
    for event in events:
        for _ in range(rng.randint(1, 6)):
            noisy = tuple(x + rng.uniform(-ALPHA / 4, ALPHA / 4) for x in event)
            coordinator.route(noisy, shard=rng.randrange(REGIONS))
            observations += 1

    print(f"{NUM_EVENTS} distinct events, {observations} observations "
          f"across {REGIONS} regions\n")
    for i in range(REGIONS):
        shard = coordinator.shard(i)
        print(f"  region {i}: saw {shard.points_seen:4d} observations, "
              f"sketch = {shard.space_words()} words "
              f"(rate 1/{shard.rate_denominator})")

    merged = coordinator.merged_sampler()
    print(f"\ncoordinator merged {coordinator.communication_words()} words "
          f"(vs {observations * DIM} words of raw data)")
    print(f"distinct events (robust F0): {merged.estimate_f0():.0f} "
          f"(true {NUM_EVENTS})")
    sample = merged.sample(random.Random(1))
    print(f"random distinct event: {tuple(round(x, 2) for x in sample.vector)}")


def parallel_pipeline() -> None:
    rng = random.Random(9)
    events = [
        tuple(rng.uniform(0, 50) for _ in range(DIM)) for _ in range(NUM_EVENTS)
    ]
    stream = []
    for event in events:
        for _ in range(rng.randint(1, 6)):
            stream.append(
                tuple(x + rng.uniform(-ALPHA / 4, ALPHA / 4) for x in event)
            )
    rng.shuffle(stream)

    def spec(executor):
        return PipelineSpec(
            alpha=ALPHA, dim=DIM, seed=7, num_shards=4, batch_size=64,
            executor=executor, num_workers=2,
        )

    serial = spec("serial").build()
    serial.extend(stream)

    # Same spec, same stream - but chunks run on worker processes and
    # the query-side merge streams the shard states home as each worker
    # finishes.  Context-manage parallel pipelines: close() releases
    # the workers.
    with spec("process").build() as parallel:
        parallel.extend(stream)
        merged = parallel.merge()
        print(f"\n{len(stream)} observations through 4 shards on "
              f"2 process workers")
        print(f"distinct events (robust F0): {merged.estimate_f0():.0f} "
              f"(true {NUM_EVENTS})")
        identical = state_fingerprint(parallel) == state_fingerprint(serial)
        print(f"state identical to the serial executor's: {identical}")


def main() -> None:
    regional_coordinator()
    parallel_pipeline()


if __name__ == "__main__":
    main()
