"""Counting distinct videos in an upload stream full of near-duplicates.

YouTube-style motivation from the paper's introduction: "many videos of
almost the same content; they appear to be slightly different due to
cuts, compression and change of resolutions."  Each upload is a
fingerprint vector; re-encodes perturb it slightly.  Counting uploads
wildly overestimates the catalogue size; a noiseless distinct-counting
sketch (BJKST) sees every re-encode as new and does no better; the
robust F0 estimator counts *distinct videos*.

Run:  python examples/video_catalog_f0.py
"""

import math
import random

from repro.api import BJKSTSpec, F0InfiniteSpec, build
from repro.persist import summary_from_state, summary_to_state

DIM = 12        # fingerprint dimension
NUM_VIDEOS = 400
ALPHA = 0.02    # re-encodes stay within this fingerprint distance


def upload_stream(rng: random.Random):
    """Fingerprints of uploads: originals plus noisy re-encodes."""
    stream = []
    for _ in range(NUM_VIDEOS):
        fingerprint = tuple(rng.uniform(0, 1) for _ in range(DIM))
        stream.append(fingerprint)
        for _ in range(rng.randint(0, 12)):  # re-uploads / re-encodes
            noise = [rng.gauss(0.0, 1.0) for _ in range(DIM)]
            norm = math.sqrt(sum(x * x for x in noise)) or 1.0
            length = rng.uniform(0.0, ALPHA / 2.0)
            stream.append(
                tuple(f + length * x / norm for f, x in zip(fingerprint, noise))
            )
    rng.shuffle(stream)
    return stream


def main() -> None:
    rng = random.Random(3)
    stream = upload_stream(rng)
    print(f"upload stream: {len(stream)} uploads of {NUM_VIDEOS} distinct videos\n")

    robust = build("f0-infinite", F0InfiniteSpec(
        alpha=ALPHA, dim=DIM, epsilon=0.15, copies=9, seed=1))
    bjkst_raw = build("bjkst", BJKSTSpec(epsilon=0.15, seed=1))
    midpoint = len(stream) // 2
    robust.process_many(stream[:midpoint])
    bjkst_raw.process_many(stream[:midpoint])
    # Simulated redeploy: both summaries survive a checkpoint round-trip
    # through the universal protocol and continue exactly where they were.
    robust = summary_from_state(summary_to_state(robust))
    bjkst_raw = summary_from_state(summary_to_state(bjkst_raw))
    robust.process_many(stream[midpoint:])
    bjkst_raw.process_many(stream[midpoint:])

    print(f"true distinct videos      : {NUM_VIDEOS}")
    print(f"raw upload count          : {len(stream)}  "
          f"({len(stream) / NUM_VIDEOS:.1f}x too high)")
    print(f"BJKST on raw fingerprints : {bjkst_raw.estimate():.0f}  "
          f"(counts every re-encode)")
    estimate = robust.estimate()
    print(f"robust F0 estimator       : {estimate:.0f}  "
          f"({abs(estimate - NUM_VIDEOS) / NUM_VIDEOS:.1%} error)")
    print(f"\nrobust estimator footprint: {robust.space_words()} words "
          f"across {robust.num_copies} copies")


if __name__ == "__main__":
    main()
