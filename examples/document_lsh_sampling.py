"""Distinct sampling of near-duplicate *documents* via MinHash LSH.

The paper's concluding remark proposes generalising the grid to
locality-sensitive hashing for general metric spaces.  Here documents are
shingle sets compared by Jaccard distance - the classic near-duplicate
web-page setting from the paper's introduction - and the robust sampler
runs on MinHash band keys instead of grid cells.  Alongside, the robust
heavy-hitters structure reports which documents are re-posted most.

Run:  python examples/document_lsh_sampling.py
"""

import collections
import random

from repro.api import HeavyHittersSpec, build
from repro.metric_space import (
    BandedLSH,
    MinHash,
    RobustLSHSampler,
    jaccard_distance,
)
from repro.metric_space.lsh import design_banding

NUM_DOCS = 80
SHINGLES_PER_DOC = 40
ALPHA = 0.3          # Jaccard distance threshold for "same document"
FAR = 0.8            # distinct documents are at least this far apart


def make_corpus(rng: random.Random):
    """Distinct documents as disjoint-ish shingle sets."""
    docs = []
    for d in range(NUM_DOCS):
        base = rng.sample(range(d * 1000, d * 1000 + 500), SHINGLES_PER_DOC)
        docs.append(frozenset(base))
    return docs


def edited_copy(doc, rng: random.Random):
    """A re-post with a few shingles changed (small Jaccard distance)."""
    shingles = set(doc)
    for _ in range(rng.randint(1, 4)):
        shingles.discard(rng.choice(sorted(shingles)))
        shingles.add(rng.randrange(10**7, 2 * 10**7))
    return frozenset(shingles)


def main() -> None:
    rng = random.Random(13)
    docs = make_corpus(rng)

    bands, rows = design_banding(near=ALPHA, far=FAR)
    print(f"banding design for near={ALPHA}, far={FAR}: "
          f"{bands} bands x {rows} rows")

    lsh = BandedLSH(
        lambda: MinHash(rng=rng), bands=bands, rows_per_band=rows, seed=7
    )
    sampler = RobustLSHSampler(lsh, jaccard_distance, alpha=ALPHA, seed=7)
    print(f"theoretical recall at alpha: {sampler.theoretical_recall():.3f}\n")

    # The stream: every document posted once, popular ones re-posted with
    # edits (power-law-ish popularity).
    stream = []
    for d, doc in enumerate(docs):
        stream.append((d, doc))
        for _ in range(max(0, NUM_DOCS // (d + 1) - 1)):
            stream.append((d, edited_copy(doc, rng)))
    rng.shuffle(stream)
    print(f"stream: {len(stream)} posts of {NUM_DOCS} distinct documents")

    owner = {}
    for d, doc in stream:
        owner[doc] = d
        sampler.insert(doc)

    print(f"tracked groups: {sampler.num_candidate_groups} "
          f"(accepted {sampler.accept_size}, rate 1/{sampler.rate_denominator})")
    print(f"robust F0 estimate: {sampler.estimate_f0():.0f} distinct documents")

    tally = collections.Counter()
    for seed in range(60):
        tally[owner[sampler.sample(random.Random(seed))]] += 1
    print(f"distinct documents hit across 60 queries: {len(tally)} "
          f"(most-reposted doc sampled {tally[0]}x - no popularity bias)")

    # Which documents are re-posted most?  Robust heavy hitters over a
    # cheap numeric embedding (document id folded into 1-D for brevity).
    hh = build("heavy-hitters", HeavyHittersSpec(
        alpha=0.5, dim=1, epsilon=0.05, phi=0.05, seed=3))
    hh.process_many((float(d * 10),) for d, _ in stream)
    top = hh.query()
    print("\nmost re-posted documents (robust heavy hitters):")
    for hit in top[:5]:
        print(f"  doc {int(hit.representative.vector[0] // 10):3d}: "
              f"~{hit.count} posts (error <= {hit.error})")


if __name__ == "__main__":
    main()
