"""Multi-tenant serving: one distinct-count sketch per API key.

A SaaS API wants, per API key, a live estimate of how many *distinct*
users called it - where the same user appears many times with slightly
different fingerprints (the near-duplicate noise the paper targets).
This example runs the library's multi-tenant summary service fully
in-process (no web framework installed: the ASGI app is driven by the
bundled test client), with:

* one robust F0 estimator per API key, built lazily on first traffic;
* concurrent clients interleaving ingest across keys;
* a resident capacity *smaller* than the key population, so cold keys
  are continuously evicted to checkpoint envelopes and restored on
  their next request - exactly, as the fingerprint tests guarantee;
* per-key query results and the ``/metrics`` payload at the end.

Run:  python examples/multi_tenant.py
"""

import asyncio
import json
import random

from repro.api import F0InfiniteSpec
from repro.service import ServiceSpec, create_app
from repro.service.testing import ASGITestClient

ALPHA = 0.5          # fingerprints within 0.5 are the same user
NUM_CLIENTS = 4      # concurrent ingest clients
CAPACITY = 3         # resident keys; the rest live as envelopes

#: API keys and how many distinct users each really has.
TENANTS = {
    "key-free-tier": 12,
    "key-startup": 35,
    "key-enterprise": 80,
    "key-internal": 5,
    "key-partner": 50,
}


def user_sighting(rng: random.Random, user: int) -> list[float]:
    """One noisy observation of ``user`` (2-D fingerprint)."""
    base_x, base_y = (user * 7.0) % 997.0, (user * 13.0) % 991.0
    return [base_x + rng.uniform(-0.1, 0.1), base_y + rng.uniform(-0.1, 0.1)]


def build_traffic(rng: random.Random) -> dict[str, list[list[list[float]]]]:
    """Per-key request chunks: repeated noisy sightings of its users."""
    traffic = {}
    for tenant, distinct_users in TENANTS.items():
        sightings = [
            user_sighting(rng, rng.randrange(distinct_users))
            for _ in range(distinct_users * 6)
        ]
        chunks, cursor = [], 0
        while cursor < len(sightings):
            step = rng.randrange(5, 25)
            chunks.append(sightings[cursor : cursor + step])
            cursor += step
        traffic[tenant] = chunks
    return traffic


async def main() -> None:
    app = create_app(
        ServiceSpec(
            summary="f0-infinite",
            spec=F0InfiniteSpec(alpha=ALPHA, dim=2, seed=42, copies=5),
            capacity=CAPACITY,
        )
    )
    client = ASGITestClient(app)
    rng = random.Random(7)
    traffic = build_traffic(rng)
    pending = {tenant: list(chunks) for tenant, chunks in traffic.items()}
    locks = {tenant: asyncio.Lock() for tenant in traffic}
    tenants = sorted(traffic)

    async def ingest_client(client_id: int) -> None:
        crng = random.Random(100 + client_id)
        while any(pending.values()):
            tenant = crng.choice(tenants)
            async with locks[tenant]:
                if not pending[tenant]:
                    continue
                chunk = pending[tenant].pop(0)
                resp = await client.post_json(
                    f"/v1/{tenant}/ingest", {"points": chunk}
                )
                assert resp.status == 200, resp.body
            await asyncio.sleep(0)

    print(
        f"Serving {len(tenants)} API keys with {NUM_CLIENTS} concurrent "
        f"clients (resident capacity {CAPACITY} -> constant evict/restore "
        "churn)...\n"
    )
    await asyncio.gather(*(ingest_client(i) for i in range(NUM_CLIENTS)))

    print(f"{'API key':<18}{'true distinct':>14}{'estimate':>12}")
    for tenant in tenants:
        resp = await client.get(f"/v1/{tenant}/query")
        estimate = resp.json()["result"]
        print(f"{tenant:<18}{TENANTS[tenant]:>14}{estimate:>12.1f}")

    # One key goes live on the SSE stream while more traffic lands.
    watched = "key-enterprise"

    async def extra_traffic() -> None:
        for _ in range(20):
            await client.post_json(
                f"/v1/{watched}/ingest",
                {"points": [user_sighting(rng, 80 + rng.randrange(40))]},
            )
            await asyncio.sleep(0.002)

    pump = asyncio.create_task(extra_traffic())
    events = await client.stream(
        f"/v1/{watched}/stream?interval=0.01", events=4
    )
    await pump
    print(f"\nSSE stream for {watched} (new users arriving live):")
    for event in events:
        print(f"  event {event['seq']}: estimate {event['result']:.1f}")

    resp = await client.get("/metrics")
    metrics = resp.json()
    print("\n/metrics:")
    print(json.dumps(metrics, indent=2))

    tenant_stats = metrics["tenants"]
    assert tenant_stats["resident"] <= CAPACITY
    assert tenant_stats["evictions"] > 0 and tenant_stats["restores"] > 0
    print(
        f"\n{tenant_stats['evictions']} evictions and "
        f"{tenant_stats['restores']} exact restores later, every key "
        "still answers from its full history."
    )


if __name__ == "__main__":
    asyncio.run(main())
