#!/usr/bin/env python
"""Fail on broken intra-repo links in the repository's markdown docs.

Scans ``README.md`` and ``docs/*.md`` (or any paths given on the
command line) for markdown links and images, and checks every
*intra-repo* target:

* relative file targets must exist (resolved against the linking file's
  directory);
* ``#fragment`` anchors - same-file or ``path#fragment`` - must match a
  heading in the target file (GitHub-style slugs);
* external schemes (``http:``, ``https:``, ``mailto:``) are skipped.

Used by the CI docs job and wrapped as a tier-1 test in
``tests/test_docs.py``, so documentation cannot silently rot when files
move.  Exit code 0 when every link resolves, 1 otherwise (one
``BROKEN:`` line per failure).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images: ``[text](target)`` / ``![alt](target)``.
#: Targets with spaces + optional titles (``(a.md "title")``) are split.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ATX headings, used to build the anchor table of each file.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Schemes that are not this repository's responsibility.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading.

    Lowercase, spaces to hyphens, punctuation dropped (hyphens kept),
    markdown emphasis/code markers stripped.

    >>> github_slug("Adding a summary")
    'adding-a-summary'
    >>> github_slug("Batch / per-point state-equivalence")
    'batch--per-point-state-equivalence'
    >>> github_slug("`repro.api` — the registry")
    'reproapi--the-registry'
    """
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)  # punctuation (incl. dashes) drops
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All heading anchors defined by a markdown file."""
    return {
        github_slug(match.group(1))
        for match in _HEADING.finditer(path.read_text(encoding="utf-8"))
    }


def check_file(path: Path, repo_root: Path) -> list[str]:
    """All broken-link descriptions for one markdown file."""
    failures = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                failures.append(
                    f"BROKEN: {path.relative_to(repo_root)}: "
                    f"({target}) -> {file_part} does not exist"
                )
                continue
        else:
            resolved = path
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in anchors_of(resolved):
                failures.append(
                    f"BROKEN: {path.relative_to(repo_root)}: "
                    f"({target}) -> no heading #{fragment} in "
                    f"{resolved.relative_to(repo_root)}"
                )
    return failures


def default_targets(repo_root: Path) -> list[Path]:
    """README.md plus every markdown file under docs/."""
    targets = [repo_root / "README.md"]
    targets.extend(sorted((repo_root / "docs").glob("*.md")))
    return [p for p in targets if p.exists()]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    repo_root = Path(__file__).resolve().parents[1]
    paths = (
        [Path(arg).resolve() for arg in argv]
        if argv
        else default_targets(repo_root)
    )
    failures: list[str] = []
    checked = 0
    for path in paths:
        failures.extend(check_file(path, repo_root))
        checked += 1
    for failure in failures:
        print(failure, file=sys.stderr)
    print(
        f"checked {checked} file(s): "
        + ("all intra-repo links resolve" if not failures
           else f"{len(failures)} broken link(s)")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
